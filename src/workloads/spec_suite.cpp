#include "workloads/spec_suite.hpp"

#include <functional>
#include <memory>

#include "util/bitops.hpp"
#include "workloads/builder.hpp"
#include "workloads/dispatch.hpp"

namespace bpnsp {
namespace {

using B = ProgramBuilder;
using KernelFn = std::function<void(ProgramBuilder &)>;

/** Uniform value in [0, 100) — the common branch-data generator. */
uint64_t
pct(Rng &r, uint64_t)
{
    return r.below(100);
}

/** Raw 64-bit random data. */
uint64_t
raw(Rng &r, uint64_t)
{
    return r.next();
}

/**
 * Generator producing values in runs (value persists for a stretch of
 * consecutive entries). Models the temporal locality of real opcode /
 * event-type streams, which makes dispatch chains learnable.
 */
std::function<uint64_t(Rng &, uint64_t)>
runsOf(std::function<uint64_t(Rng &)> pick, unsigned min_run,
       unsigned max_run)
{
    auto current = std::make_shared<uint64_t>(0);
    auto left = std::make_shared<unsigned>(0);
    return [=](Rng &r, uint64_t) {
        if (*left == 0) {
            *current = pick(r);
            *left = min_run +
                    static_cast<unsigned>(r.below(max_run - min_run + 1));
        }
        --*left;
        return *current;
    };
}

/**
 * Emit a data-driven 50/50 branch: load a fresh random word via the
 * in-program PRNG index into `base`, test its low bit. The canonical
 * systematic H2P: abundant history, no predictive signal in it.
 */
void
emitCoinBranch(ProgramBuilder &b, uint64_t base, unsigned log2_words)
{
    Assembler &a = b.text();
    b.prngNext();
    b.loadTableEntry(8, base, log2_words, B::Prng);
    a.andi(9, 8, 1);
    const Label skip = a.newLabel();
    a.beq(9, B::Zero, skip);
    a.add(10, 10, 8);
    a.bind(skip);
}

/**
 * Emit a data-driven biased branch: taken when a freshly loaded value
 * in [0,100) is below `threshold`. Extreme thresholds give easy,
 * realistic conditional work; mid thresholds give H2Ps.
 */
void
emitDataBranch(ProgramBuilder &b, uint64_t base, unsigned log2_words,
               unsigned threshold)
{
    Assembler &a = b.text();
    b.prngNext();
    b.loadTableEntry(8, base, log2_words, B::Prng);
    a.rem(8, 8, B::Hundred);
    const Label skip = a.newLabel();
    a.li(9, static_cast<int64_t>(threshold));
    a.bge(8, 9, skip);
    a.add(10, 10, 8);
    a.bind(skip);
}

/**
 * Emit a correlated threshold chain: one loaded value v is tested by
 * several branches at different program points with interleaved
 * variable-length noise loops. Earlier tests are *dependency branches*
 * of the final one (they read the same register) — the structure the
 * paper's Sec. IV-A operand-graph analysis discovers. The final branch
 * is only partially determined by the earlier outcomes (its threshold
 * lies strictly between theirs), and the noise loops scramble the
 * history positions at which the dependency branches appear (Fig. 6).
 */
void
emitCorrelatedChain(ProgramBuilder &b, uint64_t base,
                    unsigned log2_words, unsigned t_low,
                    unsigned t_mid, unsigned t_high)
{
    Assembler &a = b.text();
    b.prngNext();
    b.loadTableEntry(7, base, log2_words, B::Prng);
    a.rem(7, 7, B::Hundred);   // v in [0, 100)

    // Dependency branch 1: v < t_low.
    Label l1 = a.newLabel();
    a.li(9, static_cast<int64_t>(t_low));
    a.blt(7, 9, l1);
    a.addi(10, 10, 1);
    a.bind(l1);

    // Noise: a loop whose trip count varies with v (1..4 iters).
    a.andi(11, 7, 3);
    a.addi(11, 11, 1);
    auto noise = b.loopBeginDynamic(11);
    a.add(10, 10, 11);
    b.loopEnd(noise);

    // Dependency branch 2: v < t_high.
    Label l2 = a.newLabel();
    a.li(9, static_cast<int64_t>(t_high));
    a.blt(7, 9, l2);
    a.addi(10, 10, 2);
    a.bind(l2);

    // More variable-distance noise.
    a.andi(11, 7, 7);
    a.addi(11, 11, 1);
    auto noise2 = b.loopBeginDynamic(11);
    a.xori(10, 10, 5);
    b.loopEnd(noise2);

    // The H2P: v < t_mid, undetermined when t_low <= v < t_high.
    Label l3 = a.newLabel();
    a.li(9, static_cast<int64_t>(t_mid));
    a.blt(7, 9, l3);
    a.addi(10, 10, 4);
    a.bind(l3);
}

/**
 * A counted loop of register work: predictable branches + ALU. The
 * body's dependency chains restart from the loop counter each
 * iteration, so iterations overlap in an out-of-order core (real
 * filler code has ILP; a serial chain here would make every workload
 * dependency-bound and flatten the paper's pipeline-scaling curves).
 */
void
emitFiller(ProgramBuilder &b, unsigned trip)
{
    Assembler &a = b.text();
    auto loop = b.loopBegin(12, trip);
    a.add(10, 12, 12);       // restart the r10 chain from the counter
    a.muli(4, 12, 3);        // independent multiply
    a.xori(10, 10, 0x11);
    a.add(4, 4, 12);
    a.shri(10, 10, 1);
    b.loopEnd(loop);
}

/**
 * Rarely-taken gate into a cold-code dispatcher: once every
 * 2^log2_period phase iterations the kernel calls one library
 * function, selected by fresh PRNG bits. Gives SPEC-like programs
 * their static-branch tail without dominating dynamic behavior.
 */
KernelFn
coldCodeKernel(const std::vector<Label> &funcs, unsigned log2_period)
{
    return [funcs, log2_period](ProgramBuilder &b) {
        Assembler &a = b.text();
        emitFiller(b, 24);
        const Label skip = a.newLabel();
        const Label done = a.newLabel();
        b.periodicGate(B::Iter, log2_period, skip);
        b.prngNext();
        a.andi(7, B::Prng, static_cast<int64_t>(funcs.size() - 1));
        emitDispatchTree(a, 7, funcs, done);
        a.bind(done);
        a.bind(skip);
    };
}

// ------------------------------------------------------------------
// 600.perlbench_s-like: interpreter dispatch over a run-structured
// opcode stream; string scans; hash probes. Target: accuracy ~0.99
// with one consistent H2P (the hash-collision test).
// ------------------------------------------------------------------
Program
doBuildPerlbench(uint64_t seed)
{
    ProgramBuilder b("perlbench_like", seed);

    // Opcode stream in runs of 6..20: real interpreters revisit the
    // same ops in bursts, so the dispatch chain is history-learnable.
    const uint64_t ops = b.table(
        12, runsOf(
                [](Rng &r) {
                    const uint64_t u = r.below(100);
                    if (u < 45) return uint64_t{0};
                    if (u < 70) return uint64_t{1};
                    if (u < 85) return uint64_t{2};
                    if (u < 93) return uint64_t{3};
                    return 4 + r.below(4);
                },
                6, 20));
    const uint64_t lens = b.table(8, runsOf(
        [](Rng &r) { return 8 + r.below(24); }, 4, 12));
    const uint64_t htab = b.table(10, pct);

    FuncLibraryParams lib;
    lib.numFuncs = 256;
    lib.minBranches = 4;
    lib.maxBranches = 9;
    lib.biasChoices = {2, 4, 8, 90, 95, 97};
    lib.structSeed = 0x9e71;
    std::vector<Label> cold = emitFuncLibrary(b, lib);

    std::vector<KernelFn> kernels;
    // k0/k1: opcode dispatch loop (two variants = two phases). The
    // stream index advances sequentially so runs are visible.
    for (unsigned variant = 0; variant < 2; ++variant) {
        kernels.push_back([=](ProgramBuilder &bb) {
            Assembler &aa = bb.text();
            auto loop = bb.loopBegin(13, 48 + 16 * variant);
            aa.addi(15, 15, 1);   // stream cursor
            bb.loadTableEntry(7, ops, 12, 15);
            const Label next = aa.newLabel();
            for (unsigned op = 0; op < 7; ++op) {
                const Label miss = aa.newLabel();
                aa.li(8, static_cast<int64_t>(op));
                aa.bne(7, 8, miss);
                aa.addi(10, 10, static_cast<int64_t>(op + 1));
                aa.jmp(next);
                aa.bind(miss);
            }
            aa.bind(next);
            emitFiller(bb, 3);
            bb.loopEnd(loop);
        });
    }
    // k2: string scan with run-structured lengths (loop friendly).
    kernels.push_back([=](ProgramBuilder &bb) {
        Assembler &aa = bb.text();
        auto outer = bb.loopBegin(13, 8);
        aa.addi(15, 15, 1);
        bb.loadTableEntry(11, lens, 8, 15);
        auto scan = bb.loopBeginDynamic(11);
        aa.add(10, 10, 11);
        bb.loopEnd(scan);
        bb.loopEnd(outer);
    });
    // k3: hash-table probe; the collision path is the benchmark's H2P,
    // rate-limited to keep the suite-level accuracy near 0.99.
    kernels.push_back([=](ProgramBuilder &bb) {
        Assembler &aa = bb.text();
        auto loop = bb.loopBegin(13, 32);
        emitFiller(bb, 4);
        const Label skip = aa.newLabel();
        bb.periodicGate(13, 3, skip);   // every 8th probe collides-ish
        bb.prngNext();
        bb.loadTableEntry(7, htab, 10, B::Prng);
        const Label hit = aa.newLabel();
        aa.li(8, 42);
        aa.blt(7, 8, hit);   // ~42% taken: the systematic H2P
        aa.addi(10, 10, 3);
        aa.bind(hit);
        aa.bind(skip);
        bb.loopEnd(loop);
    });
    kernels.push_back(coldCodeKernel(cold, 2));

    emitPhaseProgram(b, kernels, 10);
    return b.finish();
}

// ------------------------------------------------------------------
// 605.mcf_s-like: network-simplex pricing — pointer chasing with
// sign tests on random costs. Few static branches; mispredictions
// concentrated almost entirely (paper: 96.9%) in a handful of H2Ps.
// ------------------------------------------------------------------
Program
doBuildMcf(uint64_t seed)
{
    ProgramBuilder b("mcf_like", seed);

    const uint64_t next_tab = b.table(12, [](Rng &r, uint64_t) {
        return r.below(1ull << 12);
    });
    const uint64_t cost_tab = b.table(12, raw);
    const uint64_t arc_tab = b.table(14, pct);

    FuncLibraryParams lib;
    lib.numFuncs = 128;
    lib.minBranches = 2;
    lib.maxBranches = 6;
    lib.biasChoices = {3, 6, 92, 96};
    lib.structSeed = 0x3cf0;
    std::vector<Label> cold = emitFuncLibrary(b, lib);

    std::vector<KernelFn> kernels;
    // k0: pointer chase; one 50/50 H2P per hop, diluted with node
    // bookkeeping (predictable inner work).
    kernels.push_back([=](ProgramBuilder &bb) {
        Assembler &aa = bb.text();
        bb.prngNext();
        aa.mov(7, B::Prng);
        auto loop = bb.loopBegin(13, 48);
        bb.loadTableEntry(8, next_tab, 12, 7);
        bb.loadTableEntry(9, cost_tab, 12, 7);
        aa.andi(11, 9, 1);
        const Label skip = aa.newLabel();
        aa.beq(11, B::Zero, skip);   // H2P heavy hitter: 50/50
        aa.add(10, 10, 9);
        aa.bind(skip);
        aa.mov(7, 8);
        emitFiller(bb, 4);
        bb.loopEnd(loop);
    });
    // k1: arc pricing sweep: mostly-predictable feasibility test plus
    // a rate-limited reduced-cost sign H2P.
    kernels.push_back([=](ProgramBuilder &bb) {
        Assembler &aa = bb.text();
        auto loop = bb.loopBegin(13, 96);
        bb.prngNext();
        bb.loadTableEntry(8, arc_tab, 14, B::Prng);
        const Label feas = aa.newLabel();
        aa.li(9, 92);
        aa.bge(8, 9, feas);   // 8% taken: easy feasibility check
        aa.add(10, 10, 8);
        aa.bind(feas);
        const Label skip = aa.newLabel();
        bb.periodicGate(13, 2, skip);   // every 4th arc
        emitCoinBranch(bb, cost_tab, 12);   // H2P: reduced-cost sign
        aa.bind(skip);
        bb.loopEnd(loop);
    });
    // k2: correlated chain (dependency-branch structure for Fig. 6).
    kernels.push_back([=](ProgramBuilder &bb) {
        auto loop = bb.loopBegin(14, 24);
        emitCorrelatedChain(bb, cost_tab, 12, 30, 50, 70);
        emitFiller(bb, 6);
        bb.loopEnd(loop);
    });
    // k3: predictable augmentation loop + rare cold code.
    kernels.push_back([=](ProgramBuilder &bb) {
        emitFiller(bb, 160);
    });
    kernels.push_back(coldCodeKernel(cold, 6));

    emitPhaseProgram(b, kernels, 10);
    return b.finish();
}

// ------------------------------------------------------------------
// 620.omnetpp_s-like: discrete event simulation — heap maintenance
// with mostly-ordered timestamp comparisons, skewed event dispatch,
// a few genuine H2P comparisons.
// ------------------------------------------------------------------
Program
doBuildOmnetpp(uint64_t seed)
{
    ProgramBuilder b("omnetpp_like", seed);

    const uint64_t tstamps = b.table(11, raw);
    const uint64_t types = b.table(
        10, runsOf(
                [](Rng &r) {
                    const uint64_t u = r.below(100);
                    if (u < 55) return uint64_t{0};
                    if (u < 80) return uint64_t{1};
                    if (u < 90) return uint64_t{2};
                    return 3 + r.below(5);
                },
                4, 16));

    FuncLibraryParams lib;
    lib.numFuncs = 384;
    lib.biasChoices = {2, 5, 10, 88, 94, 97};
    lib.structSeed = 0x02e7;
    std::vector<Label> cold = emitFuncLibrary(b, lib);

    std::vector<KernelFn> kernels;
    // k0: heap sift-down — comparisons against a running maximum are
    // mostly predictable (heaps are mostly ordered); one genuine H2P
    // comparison per sift.
    kernels.push_back([=](ProgramBuilder &bb) {
        Assembler &aa = bb.text();
        auto outer = bb.loopBegin(13, 12);
        aa.li(7, 0);   // running max
        auto depth = bb.loopBegin(14, 7);
        bb.prngNext();
        bb.loadTableEntry(8, tstamps, 11, B::Prng);
        aa.shri(8, 8, 32);
        const Label keep = aa.newLabel();
        aa.blt(8, 7, keep);     // mostly taken once max grows: easy
        aa.mov(7, 8);
        aa.bind(keep);
        emitFiller(bb, 2);
        bb.loopEnd(depth);
        const Label no_sib = aa.newLabel();
        bb.periodicGate(13, 1, no_sib);   // every other sift
        emitCoinBranch(bb, tstamps, 11);   // H2P: sibling comparison
        aa.bind(no_sib);
        bb.loopEnd(outer);
    });
    // k1: event-type dispatch (runs => mostly predictable).
    kernels.push_back([=](ProgramBuilder &bb) {
        Assembler &aa = bb.text();
        auto loop = bb.loopBegin(13, 40);
        aa.addi(15, 15, 1);
        bb.loadTableEntry(7, types, 10, 15);
        const Label next = aa.newLabel();
        for (unsigned ty = 0; ty < 7; ++ty) {
            const Label miss = aa.newLabel();
            aa.li(8, static_cast<int64_t>(ty));
            aa.bne(7, 8, miss);
            aa.addi(10, 10, static_cast<int64_t>(ty));
            aa.jmp(next);
            aa.bind(miss);
        }
        aa.bind(next);
        emitFiller(bb, 3);
        bb.loopEnd(loop);
    });
    // k2: timer wheel scan; rate-limited cancellation H2P.
    kernels.push_back([=](ProgramBuilder &bb) {
        Assembler &aa = bb.text();
        auto loop = bb.loopBegin(13, 64);
        emitFiller(bb, 3);
        const Label skip = aa.newLabel();
        bb.periodicGate(13, 3, skip);
        const Label keep = aa.newLabel();
        bb.chance(40, keep);   // H2P: cancel decision
        aa.add(10, 10, 13);
        aa.bind(keep);
        aa.bind(skip);
        bb.loopEnd(loop);
    });
    // k3: correlated chain + cold code.
    kernels.push_back([=](ProgramBuilder &bb) {
        auto loop = bb.loopBegin(14, 10);
        emitCorrelatedChain(bb, tstamps, 11, 20, 45, 75);
        emitFiller(bb, 8);
        bb.loopEnd(loop);
    });
    kernels.push_back(coldCodeKernel(cold, 2));

    emitPhaseProgram(b, kernels, 10);
    return b.finish();
}

// ------------------------------------------------------------------
// 623.xalancbmk_s-like: XML tree traversal — very highly biased
// branches (accuracy ~0.997); H2Ps only on rare, gated paths.
// ------------------------------------------------------------------
Program
doBuildXalancbmk(uint64_t seed)
{
    ProgramBuilder b("xalancbmk_like", seed);

    const uint64_t nodes = b.table(12, pct);

    FuncLibraryParams lib;
    lib.numFuncs = 512;
    lib.minBranches = 4;
    lib.maxBranches = 12;
    lib.biasChoices = {2, 4, 6, 90, 94, 97};   // mostly easy branches
    lib.structSeed = 0xa1a0;
    std::vector<Label> cold = emitFuncLibrary(b, lib);

    std::vector<KernelFn> kernels;
    // k0: element walk — 95%-biased "is element" checks.
    kernels.push_back([=](ProgramBuilder &bb) {
        Assembler &aa = bb.text();
        auto loop = bb.loopBegin(13, 96);
        bb.prngNext();
        bb.loadTableEntry(7, nodes, 12, B::Prng);
        const Label text_node = aa.newLabel();
        aa.li(8, 95);
        aa.bge(7, 8, text_node);   // 5% taken
        aa.addi(10, 10, 1);
        aa.bind(text_node);
        emitFiller(bb, 2);
        bb.loopEnd(loop);
    });
    // k1: attribute scan, counted inner loops.
    kernels.push_back([=](ProgramBuilder &bb) {
        Assembler &aa = bb.text();
        auto outer = bb.loopBegin(13, 16);
        auto inner = bb.loopBegin(14, 6);
        aa.add(10, 10, 14);
        bb.loopEnd(inner);
        bb.loopEnd(outer);
    });
    // k2: namespace resolution — H2P sites behind a 1-in-32 path.
    kernels.push_back([=](ProgramBuilder &bb) {
        Assembler &aa = bb.text();
        auto loop = bb.loopBegin(13, 48);
        emitFiller(bb, 3);
        const Label skip = aa.newLabel();
        bb.periodicGate(13, 5, skip);
        emitCoinBranch(bb, nodes, 12);   // H2P on the rare path
        emitCoinBranch(bb, nodes, 12);
        aa.bind(skip);
        bb.loopEnd(loop);
    });
    kernels.push_back(coldCodeKernel(cold, 2));

    emitPhaseProgram(b, kernels, 10);
    return b.finish();
}

// ------------------------------------------------------------------
// 625.x264_s-like: motion estimation — deep regular loop nests (SAD)
// with one dominant mode-decision H2P (paper: 1 H2P per slice causing
// 54.2% of mispredictions).
// ------------------------------------------------------------------
Program
doBuildX264(uint64_t seed)
{
    ProgramBuilder b("x264_like", seed);

    const uint64_t frame = b.table(14, raw);
    const uint64_t thr = b.configWord(30 + b.rng().below(21));

    FuncLibraryParams lib;
    lib.numFuncs = 256;
    lib.biasChoices = {3, 6, 10, 90, 94, 97};
    lib.structSeed = 0x2640;
    std::vector<Label> cold = emitFuncLibrary(b, lib);

    std::vector<KernelFn> kernels;
    // k0: 16x16 SAD with a rare data-driven early exit.
    kernels.push_back([=](ProgramBuilder &bb) {
        Assembler &aa = bb.text();
        const Label abort = bb.text().newLabel();
        auto rows = bb.loopBegin(13, 16);
        auto cols = bb.loopBegin(14, 16);
        bb.prngNext();
        bb.loadTableEntry(7, frame, 14, B::Prng);
        aa.andi(7, 7, 0xff);
        aa.add(10, 10, 7);
        bb.loopEnd(cols);
        aa.andi(9, 10, 0x3fff);
        aa.li(8, 0x3f00);
        aa.bge(9, 8, abort);   // ~1.6% taken early exit
        bb.loopEnd(rows);
        aa.bind(abort);
        aa.li(10, 0);
    });
    // k1: mode decision — the single dominant H2P (chanceVar makes
    // its bias input-specific: ~20..45% taken).
    kernels.push_back([=](ProgramBuilder &bb) {
        Assembler &aa = bb.text();
        auto loop = bb.loopBegin(13, 128);
        const Label inter = aa.newLabel();
        bb.chanceVar(thr, inter);    // the heavy hitter
        aa.addi(10, 10, 2);
        aa.bind(inter);
        emitFiller(bb, 2);
        bb.loopEnd(loop);
    });
    // k2: sub-pel refinement, fully regular.
    kernels.push_back([=](ProgramBuilder &bb) {
        Assembler &aa = bb.text();
        auto outer = bb.loopBegin(13, 9);
        auto inner = bb.loopBegin(14, 9);
        bb.prngNext();
        bb.loadTableEntry(7, frame, 14, B::Prng);
        aa.add(10, 10, 7);
        bb.loopEnd(inner);
        bb.loopEnd(outer);
    });
    // k3: entropy coding filler.
    kernels.push_back([=](ProgramBuilder &bb) {
        emitFiller(bb, 180);
    });
    kernels.push_back(coldCodeKernel(cold, 5));

    emitPhaseProgram(b, kernels, 10);
    return b.finish();
}

// ------------------------------------------------------------------
// 631.deepsjeng_s-like: alpha-beta game tree — recursion with
// pruning decisions on hashed position values.
// ------------------------------------------------------------------
Program
doBuildDeepsjeng(uint64_t seed)
{
    ProgramBuilder b("deepsjeng_like", seed);
    Assembler &a = b.text();

    const uint64_t eval_tab = b.table(12, raw);

    FuncLibraryParams lib;
    lib.numFuncs = 320;
    lib.biasChoices = {3, 6, 10, 88, 93, 96};
    lib.structSeed = 0xdee9;
    std::vector<Label> cold = emitFuncLibrary(b, lib);

    // Recursive search function: search(depth in r7). Loop counter
    // and depth are spilled to the in-memory stack around the call.
    const Label search = a.newLabel();
    {
        a.bind(search);
        const Label leaf = a.newLabel();
        const Label out = a.newLabel();
        a.beq(7, B::Zero, leaf);
        a.mov(14, 7);   // depth
        auto moves = b.loopBegin(13, 4);
        emitFiller(b, 6);   // move make/unmake bookkeeping
        b.prngNext();
        b.loadTableEntry(8, eval_tab, 12, B::Prng);
        a.rem(8, 8, B::Hundred);
        const Label pruned = a.newLabel();
        a.li(9, 70);
        a.bge(8, 9, pruned);       // H2P-ish: prune decision (30/70)
        b.push(13);
        b.push(14);
        a.addi(7, 14, -1);
        a.call(search);
        b.pop(14);
        b.pop(13);
        a.bind(pruned);
        b.loopEnd(moves);
        a.jmp(out);
        // Leaf: static eval — one hard comparison plus regular work.
        a.bind(leaf);
        emitFiller(b, 8);
        const Label neg = a.newLabel();
        b.prngNext();
        b.loadTableEntry(8, eval_tab, 12, B::Prng);
        a.rem(8, 8, B::Hundred);
        a.li(9, 45);
        a.blt(8, 9, neg);          // H2P: eval sign (45/55)
        a.addi(10, 10, 1);
        a.bind(neg);
        a.bind(out);
        a.ret();
    }

    std::vector<KernelFn> kernels;
    // k0: fixed-depth search.
    kernels.push_back([=](ProgramBuilder &bb) {
        Assembler &aa = bb.text();
        aa.li(7, 3);
        aa.call(search);
    });
    // k1: move generation — regular loops + easy legality check.
    kernels.push_back([=](ProgramBuilder &bb) {
        Assembler &aa = bb.text();
        auto loop = bb.loopBegin(13, 64);
        emitFiller(bb, 2);
        const Label illegal = aa.newLabel();
        bb.chance(6, illegal);   // 6% illegal: easy
        aa.addi(10, 10, 1);
        aa.bind(illegal);
        bb.loopEnd(loop);
    });
    // k2: correlated chain.
    kernels.push_back([=](ProgramBuilder &bb) {
        auto loop = bb.loopBegin(14, 16);
        emitCorrelatedChain(bb, eval_tab, 12, 25, 50, 75);
        emitFiller(bb, 6);
        bb.loopEnd(loop);
    });
    kernels.push_back(coldCodeKernel(cold, 2));

    emitPhaseProgram(b, kernels, 9);
    return b.finish();
}

// ------------------------------------------------------------------
// 641.leela_s-like: MCTS playouts — dozens of distinct stochastic
// decision sites (lowest accuracy in Table I: 0.880; 34 H2Ps/slice).
// ------------------------------------------------------------------
Program
doBuildLeela(uint64_t seed)
{
    ProgramBuilder b("leela_like", seed);

    const uint64_t board = b.table(12, raw);

    FuncLibraryParams lib;
    lib.numFuncs = 256;
    lib.biasChoices = {4, 8, 40, 60, 90, 95};
    lib.structSeed = 0x1ee1;
    std::vector<Label> cold = emitFuncLibrary(b, lib);

    std::vector<KernelFn> kernels;
    // k0/k1: playout kernels — unrolled chains of biased stochastic
    // decisions, each at its own static IP (many distinct H2Ps),
    // diluted with board-update work.
    for (unsigned variant = 0; variant < 2; ++variant) {
        kernels.push_back([=](ProgramBuilder &bb) {
            Assembler &aa = bb.text();
            auto loop = bb.loopBegin(13, 6);
            for (unsigned site = 0; site < 10; ++site) {
                const unsigned bias = 40 + ((site * 7 + variant * 3) % 21);
                const Label skip = aa.newLabel();
                bb.chance(bias, skip);   // H2P site
                aa.addi(10, 10, 1);
                aa.bind(skip);
                if (site % 3 == 2)
                    emitFiller(bb, 7);
            }
            bb.loopEnd(loop);
        });
    }
    // k2: UCT select — comparisons on random scores, with tree-walk
    // bookkeeping between them.
    kernels.push_back([=](ProgramBuilder &bb) {
        Assembler &aa = bb.text();
        auto loop = bb.loopBegin(13, 24);
        bb.prngNext();
        bb.loadTableEntry(7, board, 12, B::Prng);
        bb.prngNext();
        bb.loadTableEntry(8, board, 12, B::Prng);
        const Label second = aa.newLabel();
        aa.blt(7, 8, second);          // H2P: score comparison
        aa.add(10, 10, 7);
        aa.bind(second);
        emitFiller(bb, 4);
        bb.loopEnd(loop);
    });
    // k3: pattern matcher — correlated chain with tight thresholds.
    kernels.push_back([=](ProgramBuilder &bb) {
        auto loop = bb.loopBegin(14, 12);
        emitCorrelatedChain(bb, board, 12, 35, 50, 65);
        emitFiller(bb, 3);
        bb.loopEnd(loop);
    });
    kernels.push_back(coldCodeKernel(cold, 4));

    emitPhaseProgram(b, kernels, 10);
    return b.finish();
}

// ------------------------------------------------------------------
// 648.exchange2_s-like: sudoku backtracking — deep regular loop
// nests, highly biased constraint checks, rare hard choices.
// ------------------------------------------------------------------
Program
doBuildExchange2(uint64_t seed)
{
    ProgramBuilder b("exchange2_like", seed);

    const uint64_t grid = b.table(10, pct);

    FuncLibraryParams lib;
    lib.numFuncs = 256;
    lib.biasChoices = {3, 8, 85, 92, 96};
    lib.structSeed = 0xe8c2;
    std::vector<Label> cold = emitFuncLibrary(b, lib);

    std::vector<KernelFn> kernels;
    // k0: 9x9 constraint sweep; violations are rare (3%).
    kernels.push_back([=](ProgramBuilder &bb) {
        Assembler &aa = bb.text();
        auto rows = bb.loopBegin(13, 9);
        auto cols = bb.loopBegin(14, 9);
        bb.prngNext();
        bb.loadTableEntry(7, grid, 10, B::Prng);
        const Label ok = aa.newLabel();
        aa.li(8, 3);
        aa.blt(7, 8, ok);   // 3% violation
        aa.addi(10, 10, 1);
        aa.bind(ok);
        bb.loopEnd(cols);
        bb.loopEnd(rows);
    });
    // k1: digit placement — regular work, 7 hard choice sites that
    // fire once per 8 visits.
    kernels.push_back([=](ProgramBuilder &bb) {
        Assembler &aa = bb.text();
        auto loop = bb.loopBegin(13, 8);
        for (unsigned site = 0; site < 7; ++site) {
            emitFiller(bb, 4);
            const Label skip = aa.newLabel();
            bb.periodicGate(13, 3, skip);
            emitCoinBranch(bb, grid, 10);   // H2P behind the gate
            aa.bind(skip);
        }
        bb.loopEnd(loop);
    });
    // k2: block verification, fully regular.
    kernels.push_back([=](ProgramBuilder &bb) {
        emitFiller(bb, 200);
    });
    kernels.push_back(coldCodeKernel(cold, 4));

    emitPhaseProgram(b, kernels, 10);
    return b.finish();
}

// ------------------------------------------------------------------
// 657.xz_s-like: LZMA-style compression — match-length loops with
// data-driven trip counts and near-random range-coder bit branches.
// ------------------------------------------------------------------
Program
doBuildXz(uint64_t seed)
{
    ProgramBuilder b("xz_like", seed);

    // Geometric-ish match lengths 1..24.
    const uint64_t matches = b.table(10, [](Rng &r, uint64_t) {
        uint64_t len = 1;
        while (len < 24 && r.chance(0.72))
            ++len;
        return len;
    });
    const uint64_t lit_thr = b.configWord(30 + b.rng().below(30));

    FuncLibraryParams lib;
    lib.numFuncs = 192;
    lib.biasChoices = {3, 7, 12, 85, 92, 96};
    lib.structSeed = 0x3c21;
    std::vector<Label> cold = emitFuncLibrary(b, lib);

    std::vector<KernelFn> kernels;
    // k0: match loop — trip count drawn per iteration, so the loop
    // exit is a systematic H2P the loop predictor cannot lock onto.
    kernels.push_back([=](ProgramBuilder &bb) {
        Assembler &aa = bb.text();
        auto outer = bb.loopBegin(13, 16);
        bb.prngNext();
        bb.loadTableEntry(11, matches, 10, B::Prng);
        auto match = bb.loopBeginDynamic(11);
        aa.add(10, 10, 11);
        aa.muli(10, 10, 5);
        bb.loopEnd(match);
        emitFiller(bb, 5);
        bb.loopEnd(outer);
    });
    // k1: literal/match decision with an input-specific bias.
    kernels.push_back([=](ProgramBuilder &bb) {
        Assembler &aa = bb.text();
        auto loop = bb.loopBegin(13, 24);
        const Label match = aa.newLabel();
        bb.chanceVar(lit_thr, match);   // H2P, bias varies per input
        aa.addi(10, 10, 1);
        aa.bind(match);
        emitFiller(bb, 4);
        bb.loopEnd(loop);
    });
    // k2: range-coder bit branches (near-coin sites), diluted with
    // renormalization arithmetic.
    kernels.push_back([=](ProgramBuilder &bb) {
        Assembler &aa = bb.text();
        auto loop = bb.loopBegin(13, 20);
        for (unsigned site = 0; site < 3; ++site) {
            const Label skip = aa.newLabel();
            bb.chance(48 + site * 4, skip);   // H2P sites
            aa.xori(10, 10, 0x33);
            aa.bind(skip);
            emitFiller(bb, 3);
        }
        bb.loopEnd(loop);
    });
    kernels.push_back(coldCodeKernel(cold, 4));

    emitPhaseProgram(b, kernels, 10);
    return b.finish();
}

} // namespace

Program buildPerlbenchLike(uint64_t seed) { return doBuildPerlbench(seed); }
Program buildMcfLike(uint64_t seed) { return doBuildMcf(seed); }
Program buildOmnetppLike(uint64_t seed) { return doBuildOmnetpp(seed); }
Program buildXalancbmkLike(uint64_t seed) { return doBuildXalancbmk(seed); }
Program buildX264Like(uint64_t seed) { return doBuildX264(seed); }
Program buildDeepsjengLike(uint64_t seed) { return doBuildDeepsjeng(seed); }
Program buildLeelaLike(uint64_t seed) { return doBuildLeela(seed); }
Program buildExchange2Like(uint64_t seed) { return doBuildExchange2(seed); }
Program buildXzLike(uint64_t seed) { return doBuildXz(seed); }

std::vector<WorkloadInput>
makeInputs(const std::string &workload_name, unsigned count)
{
    std::vector<WorkloadInput> inputs;
    inputs.reserve(count);
    uint64_t base = 0;
    for (char c : workload_name)
        base = base * 131 + static_cast<unsigned char>(c);
    for (unsigned i = 0; i < count; ++i) {
        inputs.push_back(WorkloadInput{
            "input-" + std::to_string(i),
            mix64(base * 1000003 + i * 7919 + 13)});
    }
    return inputs;
}

std::vector<Workload>
specSuite()
{
    std::vector<Workload> suite;
    auto addWorkload = [&](const std::string &name, unsigned num_inputs,
                           Program (*fn)(uint64_t)) {
        Workload w;
        w.name = name;
        w.lcf = false;
        w.inputs = makeInputs(name, num_inputs);
        w.builder = fn;
        suite.push_back(std::move(w));
    };
    // Input counts from Table I's "# App. Inputs" column.
    addWorkload("perlbench_like", 4, &buildPerlbenchLike);
    addWorkload("mcf_like", 8, &buildMcfLike);
    addWorkload("omnetpp_like", 5, &buildOmnetppLike);
    addWorkload("xalancbmk_like", 4, &buildXalancbmkLike);
    addWorkload("x264_like", 14, &buildX264Like);
    addWorkload("deepsjeng_like", 12, &buildDeepsjengLike);
    addWorkload("leela_like", 10, &buildLeelaLike);
    addWorkload("exchange2_like", 5, &buildExchange2Like);
    addWorkload("xz_like", 5, &buildXzLike);
    return suite;
}

} // namespace bpnsp
