#include "workloads/dispatch.hpp"

#include <cmath>

#include "util/logging.hpp"

namespace bpnsp {
namespace {

/** Recursive helper for emitDispatchTree over funcs[lo, hi). */
void
emitTreeRange(Assembler &a, unsigned idx_reg,
              const std::vector<Label> &funcs, size_t lo, size_t hi,
              Label done)
{
    if (hi - lo == 1) {
        a.call(funcs[lo]);
        a.jmp(done);
        return;
    }
    const size_t mid = lo + (hi - lo) / 2;
    const Label right = a.newLabel();
    a.li(ProgramBuilder::T1, static_cast<int64_t>(mid));
    a.bge(idx_reg, ProgramBuilder::T1, right);
    emitTreeRange(a, idx_reg, funcs, lo, mid, done);
    a.bind(right);
    emitTreeRange(a, idx_reg, funcs, mid, hi, done);
}

} // namespace

void
emitDispatchTree(Assembler &a, unsigned idx_reg,
                 const std::vector<Label> &funcs, Label done)
{
    BPNSP_ASSERT(!funcs.empty());
    BPNSP_ASSERT(idx_reg != ProgramBuilder::T1,
                 "index register clobbered by the tree");
    emitTreeRange(a, idx_reg, funcs, 0, funcs.size(), done);
}

std::vector<Label>
emitFuncLibrary(ProgramBuilder &b, const FuncLibraryParams &params)
{
    Assembler &a = b.text();
    Rng structure(params.structSeed);   // input-invariant code shape
    std::vector<Label> funcs;
    funcs.reserve(params.numFuncs);

    for (unsigned f = 0; f < params.numFuncs; ++f) {
        // Per-function private data (contents are input-specific:
        // generated through the builder's data RNG).
        const uint64_t data_base = b.table(
            params.log2FuncData,
            [](Rng &r, uint64_t) { return r.below(100); });

        funcs.push_back(a.newLabel());
        a.bind(funcs.back());

        const unsigned branches = static_cast<unsigned>(
            structure.range(params.minBranches, params.maxBranches));

        // Walk the function's data, testing each value against a
        // threshold fixed in the code. r7 holds a rotating cursor.
        a.addi(7, ProgramBuilder::Iter, static_cast<int64_t>(f));
        for (unsigned br = 0; br < branches; ++br) {
            const unsigned threshold =
                params.biasChoices[structure.below(
                    params.biasChoices.size())];
            const Label skip = a.newLabel();
            b.loadTableEntry(8, data_base, params.log2FuncData, 7);
            a.li(9, static_cast<int64_t>(threshold));
            a.bge(8, 9, skip);
            // Taken path: a little work that feeds later branches.
            a.add(10, 10, 8);
            a.xori(7, 7, 0x2b);
            a.bind(skip);
            a.addi(7, 7, 1);
        }

        // Optionally a small data-bounded loop.
        if (structure.below(100) < params.loopChancePct) {
            b.loadTableEntry(11, data_base, params.log2FuncData, 7);
            a.andi(11, 11, 7);
            a.addi(11, 11, 1);   // trip count 1..8
            const auto loop = b.loopBeginDynamic(11);
            a.add(10, 10, 11);
            b.loopEnd(loop);
        }
        a.ret();
    }
    return funcs;
}

uint64_t
makeZipfCallSequence(ProgramBuilder &b, unsigned log2_len,
                     unsigned num_funcs, double exponent,
                     unsigned min_run, unsigned max_run)
{
    BPNSP_ASSERT(num_funcs >= 1);
    BPNSP_ASSERT(min_run >= 1 && max_run >= min_run);
    // Build the Zipf CDF once, then sample with the builder's data RNG
    // (so the call mix is input-specific while the code is shared).
    std::vector<double> cdf(num_funcs);
    double total = 0.0;
    for (unsigned r = 0; r < num_funcs; ++r) {
        total += 1.0 / std::pow(static_cast<double>(r + 1), exponent);
        cdf[r] = total;
    }
    for (auto &c : cdf)
        c /= total;

    // Random rank->function permutation, fixed per input, so that hot
    // functions are scattered across the address space.
    std::vector<unsigned> perm(num_funcs);
    for (unsigned f = 0; f < num_funcs; ++f)
        perm[f] = f;
    for (unsigned f = num_funcs - 1; f > 0; --f) {
        const unsigned j =
            static_cast<unsigned>(b.rng().below(f + 1));
        std::swap(perm[f], perm[j]);
    }

    uint64_t current = 0;
    unsigned left = 0;
    return b.table(log2_len, [&](Rng &r, uint64_t) {
        if (left == 0) {
            const double u = r.uniform();
            // Binary search the CDF.
            size_t lo = 0;
            size_t hi = cdf.size() - 1;
            while (lo < hi) {
                const size_t mid = (lo + hi) / 2;
                if (cdf[mid] < u)
                    lo = mid + 1;
                else
                    hi = mid;
            }
            current = perm[lo];
            // Bimodal run lengths: half the runs are single calls
            // (keeping recurrence intervals long for rare branches),
            // half are bursts (giving dispatch code its locality).
            if (max_run > min_run && r.chance(0.5)) {
                left = 1;
            } else {
                left = min_run + static_cast<unsigned>(
                                     r.below(max_run - min_run + 1));
            }
        }
        --left;
        return current;
    });
}

} // namespace bpnsp
