#include "workloads/builder.hpp"

#include "util/bitops.hpp"
#include "util/logging.hpp"

namespace bpnsp {

ProgramBuilder::ProgramBuilder(std::string program_name,
                               uint64_t data_seed)
    : asm_(std::move(program_name)), dataRng(data_seed)
{
    // Instruction 0 jumps to the real entry point, which the program
    // scaffold binds later; code emitted before it (function bodies)
    // is only reachable via call.
    entryLbl = asm_.newLabel();
    asm_.jmp(entryLbl);
    // Allocate the config words up front so that function bodies
    // emitted before prologue() can reference their addresses.
    seedAddr = configWord(dataRng.next() | 1);
    spAddr = configWord(kStackBase);
}

void
ProgramBuilder::prologue()
{
    BPNSP_ASSERT(!prologueDone, "prologue emitted twice");
    prologueDone = true;
    asm_.li(Zero, 0);
    asm_.li(Hundred, 100);
    asm_.li(Iter, 0);
    asm_.li(T0, static_cast<int64_t>(seedAddr));
    asm_.load(Prng, T0, 0);
}

void
ProgramBuilder::prngNext()
{
    // r1 = mix64(r1 ^ 0): a full-period-ish mixing step.
    asm_.hash(Prng, Prng, Zero);
}

void
ProgramBuilder::chance(unsigned pct, Label taken)
{
    BPNSP_ASSERT(pct <= 100);
    prngNext();
    asm_.rem(T0, Prng, Hundred);
    asm_.li(T1, static_cast<int64_t>(pct));
    asm_.blt(T0, T1, taken);
}

void
ProgramBuilder::chanceVar(uint64_t threshold_addr, Label taken)
{
    prngNext();
    asm_.rem(T0, Prng, Hundred);
    asm_.li(T2, static_cast<int64_t>(threshold_addr));
    asm_.load(T1, T2, 0);
    asm_.blt(T0, T1, taken);
}

uint64_t
ProgramBuilder::table(
    unsigned log2_words,
    const std::function<uint64_t(Rng &, uint64_t)> &gen)
{
    const uint64_t words = 1ull << log2_words;
    const uint64_t base = dataCursor;
    for (uint64_t i = 0; i < words; ++i)
        asm_.data(base + i * 8, gen(dataRng, i));
    dataCursor = base + words * 8;
    // Keep tables page-separated so address streams look realistic.
    dataCursor = (dataCursor + 4095) & ~4095ull;
    return base;
}

uint64_t
ProgramBuilder::configWord(uint64_t value)
{
    const uint64_t addr = dataCursor;
    asm_.data(addr, value);
    dataCursor += 8;
    return addr;
}

void
ProgramBuilder::loadTableEntry(unsigned rd, uint64_t base,
                               unsigned log2_words, unsigned idx_reg)
{
    asm_.andi(T0, idx_reg, static_cast<int64_t>((1ull << log2_words) - 1));
    asm_.shli(T0, T0, 3);
    asm_.li(T1, static_cast<int64_t>(base));
    asm_.add(T0, T0, T1);
    asm_.load(rd, T0, 0);
}

void
ProgramBuilder::periodicGate(unsigned gate_reg, unsigned log2_period,
                             Label skip)
{
    BPNSP_ASSERT(log2_period >= 1 && log2_period < 20);
    asm_.andi(T0, gate_reg, static_cast<int64_t>(
                                (1ull << log2_period) - 1));
    asm_.bne(T0, Zero, skip);
}

ProgramBuilder::LoopCtx
ProgramBuilder::loopBegin(unsigned counter_reg, int64_t count)
{
    BPNSP_ASSERT(count >= 1, "loop count must be positive");
    asm_.li(counter_reg, count);
    return LoopCtx{asm_.here(), counter_reg};
}

ProgramBuilder::LoopCtx
ProgramBuilder::loopBeginDynamic(unsigned counter_reg)
{
    return LoopCtx{asm_.here(), counter_reg};
}

void
ProgramBuilder::loopEnd(const LoopCtx &loop)
{
    asm_.addi(loop.counter, loop.counter, -1);
    asm_.bne(loop.counter, Zero, loop.head);
}

void
ProgramBuilder::push(unsigned reg)
{
    asm_.li(T0, static_cast<int64_t>(spAddr));
    asm_.load(T1, T0, 0);
    asm_.store(reg, T1, 0);
    asm_.addi(T1, T1, 8);
    asm_.store(T1, T0, 0);
}

void
ProgramBuilder::pop(unsigned reg)
{
    asm_.li(T0, static_cast<int64_t>(spAddr));
    asm_.load(T1, T0, 0);
    asm_.addi(T1, T1, -8);
    asm_.load(reg, T1, 0);
    asm_.store(T1, T0, 0);
}

Program
ProgramBuilder::finish()
{
    return asm_.finish();
}

void
emitPhaseProgram(
    ProgramBuilder &b,
    const std::vector<std::function<void(ProgramBuilder &)>> &kernels,
    unsigned log2_segment_iters)
{
    BPNSP_ASSERT(!kernels.empty());
    Assembler &a = b.text();

    const Label entry = b.entryLabel();
    std::vector<Label> kernel_labels;
    kernel_labels.reserve(kernels.size());
    for (size_t k = 0; k < kernels.size(); ++k)
        kernel_labels.push_back(a.newLabel());

    // Kernel functions.
    for (size_t k = 0; k < kernels.size(); ++k) {
        a.bind(kernel_labels[k]);
        kernels[k](b);
        a.ret();
    }

    // Outer phase loop.
    a.bind(entry);
    b.prologue();
    const Label loop_head = a.here();

    // phase = (iter >> log2_segment_iters) % numKernels
    a.shri(5, ProgramBuilder::Iter, log2_segment_iters);
    const bool pow2 = isPowerOfTwo(kernels.size());
    if (pow2) {
        a.andi(5, 5, static_cast<int64_t>(kernels.size() - 1));
    } else {
        a.li(6, static_cast<int64_t>(kernels.size()));
        a.rem(5, 5, 6);
    }

    // Dispatch chain: one compare-and-branch per kernel. These
    // branches flip only at segment boundaries, so they are easy for
    // any history predictor — phase structure, not noise.
    const Label continue_label = a.newLabel();
    for (size_t k = 0; k < kernels.size(); ++k) {
        const Label skip = a.newLabel();
        a.li(6, static_cast<int64_t>(k));
        a.bne(5, 6, skip);
        a.call(kernel_labels[k]);
        a.jmp(continue_label);
        a.bind(skip);
    }
    a.bind(continue_label);
    a.addi(ProgramBuilder::Iter, ProgramBuilder::Iter, 1);
    a.jmp(loop_head);
}

} // namespace bpnsp
