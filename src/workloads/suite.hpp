/**
 * @file
 * Workload registry: lookup by name across the SPEC-like and LCF
 * suites.
 */

#ifndef BPNSP_WORKLOADS_SUITE_HPP
#define BPNSP_WORKLOADS_SUITE_HPP

#include <string>
#include <vector>

#include "workloads/frontend_suite.hpp"
#include "workloads/lcf_suite.hpp"
#include "workloads/spec_suite.hpp"
#include "workloads/workload.hpp"

namespace bpnsp {

/** All seventeen workloads (SPEC-like, LCF, then frontend-stress). */
std::vector<Workload> allWorkloads();

/** Find a workload by name; fatal() if unknown. */
Workload findWorkload(const std::string &name);

} // namespace bpnsp

#endif // BPNSP_WORKLOADS_SUITE_HPP
