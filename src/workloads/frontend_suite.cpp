#include "workloads/frontend_suite.hpp"

#include "util/rng.hpp"
#include "workloads/builder.hpp"
#include "workloads/lcf_suite.hpp"

namespace bpnsp {

namespace {

using B = ProgramBuilder;

/** vcall: rdbms-class library dispatched through a vtable. */
LcfAppParams
vcallParams()
{
    LcfAppParams p;
    p.name = "vcall";
    p.numFuncs = 896;
    p.minBranches = 3;
    p.maxBranches = 10;
    p.zipfExponent = 0.85;
    p.biasChoices = {3, 5, 10, 50, 90, 95, 97};
    p.hotH2pPcts = {50, 45};
    p.hotGateLog2 = 3;
    p.minCallRun = 2;
    p.maxCallRun = 6;
    p.indirectDispatch = true;
    // Depth 24 against the default 16-deep RAS: every unwind past the
    // wrap point mispredicts, which is the structural (not capacity-
    // tunable-away) component of its target MPKI.
    p.recursionDepth = 24;
    p.recursionGateLog2 = 5;
    p.structSeed = 0x7ca1;
    return p;
}

/**
 * interp_like: a threaded-code interpreter loop. The instruction mix
 * (and thus cond-branch/load fractions) lives in the handlers; the
 * dispatch `jmpr` is the single hottest indirect site, exactly the
 * shape CBP-style traces show for perl/python-class workloads.
 */
Program
buildInterpLike(uint64_t seed)
{
    constexpr unsigned kNumHandlers = 48;
    constexpr unsigned kLog2Handlers = 6;    // table rounded up
    constexpr unsigned kLog2Bytecode = 14;
    constexpr unsigned kLog2HandlerData = 6;

    ProgramBuilder b("interp_like", seed);
    Assembler &a = b.text();
    Rng structure(0x17e9b);   // input-invariant code shape

    // Handlers first (the entry stub jumps over them); each ends by
    // jumping back to the shared dispatch head.
    const Label dispatch = a.newLabel();
    std::vector<Label> handlers;
    handlers.reserve(kNumHandlers);
    for (unsigned h = 0; h < kNumHandlers; ++h) {
        const uint64_t data_base = b.table(
            kLog2HandlerData,
            [](Rng &r, uint64_t) { return r.below(100); });
        handlers.push_back(a.newLabel());
        a.bind(handlers.back());

        // A few data-dependent branches and some ALU/load work, like
        // a real opcode body (stack manipulation, tag checks). The
        // branches are strongly biased — tag checks mostly pass — so
        // they add little entropy to the indirect predictor's history
        // and the dispatch phrases stay learnable.
        const unsigned branches =
            2 + static_cast<unsigned>(structure.below(2));
        a.addi(9, B::Iter, static_cast<int64_t>(h * 7));
        for (unsigned br = 0; br < branches; ++br) {
            const unsigned threshold =
                structure.below(2) != 0
                    ? 5 + static_cast<unsigned>(structure.below(10))
                    : 85 + static_cast<unsigned>(structure.below(10));
            const Label skip = a.newLabel();
            b.loadTableEntry(10, data_base, kLog2HandlerData, 9);
            a.li(11, static_cast<int64_t>(threshold));
            a.bge(10, 11, skip);
            a.add(12, 12, 10);
            a.xori(9, 9, 0x11);
            a.bind(skip);
            a.addi(9, 9, 1);
        }
        a.jmp(dispatch);
    }

    // Handler vtable: entry indices of the bound handler labels.
    const uint64_t handler_tbl =
        b.table(kLog2Handlers, [&](Rng &, uint64_t i) {
            return a.labelTarget(
                handlers[static_cast<size_t>(i) % kNumHandlers]);
        });

    // Bytecode stream: phrase-structured opcode sequence. A small set
    // of fixed phrases repeats (learnable given history); phrase
    // choice and glue opcodes are input-specific noise.
    std::vector<std::vector<unsigned>> phrases;
    {
        Rng phraseRng(0x5eed ^ 0x9e37);   // shared across inputs
        for (unsigned p = 0; p < 8; ++p) {
            std::vector<unsigned> phrase(
                3 + static_cast<size_t>(phraseRng.below(4)));
            for (auto &op : phrase)
                op = static_cast<unsigned>(phraseRng.below(kNumHandlers));
            phrases.push_back(std::move(phrase));
        }
    }
    std::vector<unsigned> pending;
    const uint64_t bytecode_tbl =
        b.table(kLog2Bytecode, [&](Rng &r, uint64_t) {
            if (pending.empty()) {
                if (r.chance(0.8)) {
                    const auto &ph = phrases[r.below(phrases.size())];
                    pending.assign(ph.rbegin(), ph.rend());
                } else {
                    pending.push_back(static_cast<unsigned>(
                        r.below(kNumHandlers)));
                }
            }
            const unsigned op = pending.back();
            pending.pop_back();
            return op;
        });

    a.bind(b.entryLabel());
    b.prologue();
    a.bind(dispatch);
    b.loadTableEntry(7, bytecode_tbl, kLog2Bytecode, B::Iter);
    b.loadTableEntry(8, handler_tbl, kLog2Handlers, 7);
    a.addi(B::Iter, B::Iter, 1);
    a.jmpr(8);
    return b.finish();
}

} // namespace

std::vector<Workload>
frontendSuite()
{
    std::vector<Workload> suite;

    {
        const LcfAppParams params = vcallParams();
        Workload w;
        w.name = params.name;
        w.lcf = true;
        w.inputs = makeInputs(params.name, 1);
        w.builder = [params](uint64_t seed) {
            return buildLcfApp(params, seed);
        };
        suite.push_back(std::move(w));
    }

    {
        Workload w;
        w.name = "interp_like";
        w.inputs = makeInputs("interp_like", 3);
        w.builder = buildInterpLike;
        suite.push_back(std::move(w));
    }

    return suite;
}

} // namespace bpnsp
