/**
 * @file
 * Shared emitters for multi-function code footprints: binary dispatch
 * trees and libraries of generated functions. Used both by the LCF
 * applications (their defining feature) and by the SPEC-like suite's
 * cold-code tails.
 */

#ifndef BPNSP_WORKLOADS_DISPATCH_HPP
#define BPNSP_WORKLOADS_DISPATCH_HPP

#include <cstdint>
#include <vector>

#include "workloads/builder.hpp"

namespace bpnsp {

/**
 * Emit a binary-search dispatch tree over function labels.
 *
 * At runtime, the function index is expected in idx_reg; the matching
 * function is called and control continues at `done`. The tree's
 * compare branches are themselves static conditional branches whose
 * predictability tracks the call distribution — a realistic model of
 * dispatch code in large applications.
 *
 * Clobbers r3 (T1).
 */
void emitDispatchTree(Assembler &a, unsigned idx_reg,
                      const std::vector<Label> &funcs, Label done);

/** Parameters of a generated function library. */
struct FuncLibraryParams
{
    unsigned numFuncs = 256;
    unsigned minBranches = 3;     ///< conditional branches per function
    unsigned maxBranches = 10;
    unsigned log2FuncData = 3;    ///< words of private data per function
    /**
     * Threshold choices (percent) for the functions' data-driven
     * branches; drawn per branch by the structural RNG. Mid-range
     * values yield poorly-predictable branches, extremes yield easy
     * ones — this sets the library's accuracy spread (paper Fig. 3).
     */
    std::vector<unsigned> biasChoices = {2, 5, 10, 30, 50, 70, 90, 95};
    /** Probability (percent) that a function contains a mini loop. */
    unsigned loopChancePct = 30;
    uint64_t structSeed = 0x5eed;  ///< fixed per benchmark, NOT per input
};

/**
 * Emit a library of generated functions and return their entry labels.
 *
 * Function bodies read from per-function data tables (input-specific
 * contents) and branch on the values against code-constant thresholds,
 * so each static branch has a stable input-dependent bias. Emit this
 * *before* the program entry (bodies are only reachable by call).
 */
std::vector<Label> emitFuncLibrary(ProgramBuilder &b,
                                   const FuncLibraryParams &params);

/**
 * Fill a call-sequence table with Zipf-distributed function indices.
 * Consecutive entries repeat each sampled function for a run of
 * [min_run, max_run] calls, modelling the temporal locality of real
 * call streams (which makes dispatch code learnable while leaving the
 * static branch population rare).
 * @return the table base address.
 */
uint64_t makeZipfCallSequence(ProgramBuilder &b, unsigned log2_len,
                              unsigned num_funcs, double exponent,
                              unsigned min_run = 1,
                              unsigned max_run = 1);

} // namespace bpnsp

#endif // BPNSP_WORKLOADS_DISPATCH_HPP
