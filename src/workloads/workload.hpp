/**
 * @file
 * Workload abstraction: a named benchmark with multiple application
 * inputs. Mirrors the paper's methodology (Sec. III-A), where each
 * SPECint 2017 benchmark is traced over an expanded set of inputs and
 * H2P overlap is measured across them.
 *
 * Invariant: all inputs of a workload execute the *same* program text;
 * inputs differ only in data memory contents and the in-program PRNG
 * seed. Static branch IPs are therefore comparable across inputs.
 */

#ifndef BPNSP_WORKLOADS_WORKLOAD_HPP
#define BPNSP_WORKLOADS_WORKLOAD_HPP

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "vm/program.hpp"

namespace bpnsp {

/** One application input (data set) of a workload. */
struct WorkloadInput
{
    std::string label;   ///< e.g. "input-3"
    uint64_t seed;       ///< drives all input-specific data
};

/** A benchmark with its input collection and program builder. */
struct Workload
{
    std::string name;                ///< e.g. "mcf_like"
    bool lcf = false;                ///< large-code-footprint class
    std::vector<WorkloadInput> inputs;
    std::function<Program(uint64_t seed)> builder;

    /** Build the program for input index idx. */
    Program
    build(size_t idx) const
    {
        Program prog = builder(inputs.at(idx).seed);
        prog.name = name + "/" + inputs.at(idx).label;
        return prog;
    }
};

/** Construct the canonical input list for a workload. */
std::vector<WorkloadInput> makeInputs(const std::string &workload_name,
                                      unsigned count);

} // namespace bpnsp

#endif // BPNSP_WORKLOADS_WORKLOAD_HPP
