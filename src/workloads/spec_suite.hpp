/**
 * @file
 * The SPEC-like synthetic benchmark suite.
 *
 * Nine programs model the branch character of the SPECint 2017
 * benchmarks studied in the paper's Table I (603.gcc_s is in the LCF
 * suite, as in the paper). Each captures the qualitative behaviors the
 * paper attributes to its namesake: e.g. mcf_like concentrates its
 * mispredictions in a handful of data-dependent branches (96.9% of
 * mispredictions from H2Ps), x264_like is loop-regular with a single
 * dominant H2P, leela_like sprays dozens of moderately-biased
 * stochastic decision branches (lowest accuracy in the suite).
 */

#ifndef BPNSP_WORKLOADS_SPEC_SUITE_HPP
#define BPNSP_WORKLOADS_SPEC_SUITE_HPP

#include <cstdint>

#include "vm/program.hpp"
#include "workloads/workload.hpp"

namespace bpnsp {

Program buildPerlbenchLike(uint64_t seed);
Program buildMcfLike(uint64_t seed);
Program buildOmnetppLike(uint64_t seed);
Program buildXalancbmkLike(uint64_t seed);
Program buildX264Like(uint64_t seed);
Program buildDeepsjengLike(uint64_t seed);
Program buildLeelaLike(uint64_t seed);
Program buildExchange2Like(uint64_t seed);
Program buildXzLike(uint64_t seed);

/** The nine SPEC-like workloads with their per-benchmark input counts
 *  (Table I's "# App. Inputs" column). */
std::vector<Workload> specSuite();

} // namespace bpnsp

#endif // BPNSP_WORKLOADS_SPEC_SUITE_HPP
