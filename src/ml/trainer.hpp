/**
 * @file
 * End-to-end helper-predictor experiment (paper Sec. V): screen H2Ps
 * on training inputs, collect history datasets over those inputs,
 * train branch-specialized low-precision models offline, deploy them
 * alongside a TAGE-SC-L baseline, and evaluate on a *held-out* input —
 * the paper's offline-training/online-inference deployment scenario.
 */

#ifndef BPNSP_ML_TRAINER_HPP
#define BPNSP_ML_TRAINER_HPP

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "ml/models.hpp"
#include "workloads/workload.hpp"

namespace bpnsp {

/** Experiment knobs. */
struct HelperExperimentConfig
{
    std::string baseline = "tage-sc-l-8KB";
    unsigned historyLength = 64;       ///< model input history
    uint64_t screenInstructions = 2000000;
    uint64_t trainInstructions = 2000000;   ///< per training input
    uint64_t testInstructions = 2000000;
    unsigned maxHelpers = 6;           ///< H2Ps to cover
    uint64_t maxSamplesPerInput = 20000;
    bool useCnn = true;                ///< CNN vs perceptron helpers
    TrainConfig train;
};

/** Per-covered-branch outcome on the held-out input. */
struct HelperBranchResult
{
    uint64_t ip = 0;
    uint64_t trainSamples = 0;
    uint64_t testExecs = 0;
    double baselineAccuracy = 0.0;   ///< TAGE-SC-L on the test input
    double helperAccuracy = 0.0;     ///< overlay on the test input
};

/** Whole-experiment outcome. */
struct HelperExperimentResult
{
    std::vector<HelperBranchResult> branches;
    double baselineOverallAccuracy = 0.0;
    double overlayOverallAccuracy = 0.0;
    /** Models kept alive for the caller (e.g. further inspection). */
    std::vector<std::unique_ptr<HelperModel>> models;
};

/**
 * Run the full experiment.
 *
 * @param workload the benchmark
 * @param train_inputs input indices used for screening + training
 * @param test_input held-out input index for evaluation
 */
HelperExperimentResult runHelperExperiment(
    const Workload &workload, const std::vector<size_t> &train_inputs,
    size_t test_input, const HelperExperimentConfig &config);

} // namespace bpnsp

#endif // BPNSP_ML_TRAINER_HPP
