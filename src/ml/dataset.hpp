/**
 * @file
 * Offline training data collection (paper Sec. V-B).
 *
 * For a target (H2P) branch, the collector captures the global branch
 * history preceding each dynamic execution together with the resolved
 * direction — the "richer training data" the paper proposes gathering
 * from multiple long traces over multiple application inputs.
 */

#ifndef BPNSP_ML_DATASET_HPP
#define BPNSP_ML_DATASET_HPP

#include <cstdint>
#include <vector>

#include "trace/sink.hpp"
#include "util/folded_history.hpp"

namespace bpnsp {

/** One training sample: history bits (most recent first) + label. */
struct HistorySample
{
    std::vector<uint8_t> bits;   ///< 0/1, index 0 = most recent
    bool taken = false;
};

/** A labelled dataset for one branch. */
struct BranchDataset
{
    uint64_t ip = 0;
    unsigned historyLength = 0;
    std::vector<HistorySample> samples;

    /** Fraction of taken labels. */
    double
    takenFraction() const
    {
        if (samples.empty())
            return 0.0;
        uint64_t taken = 0;
        for (const auto &s : samples)
            taken += s.taken;
        return static_cast<double>(taken) /
               static_cast<double>(samples.size());
    }
};

/** Streams a trace and harvests samples for one target branch. */
class DatasetCollector : public TraceSink
{
  public:
    /**
     * @param target_ip branch to collect for
     * @param history_length history bits per sample
     * @param max_samples collection cap (0 = unlimited)
     */
    DatasetCollector(uint64_t target_ip, unsigned history_length,
                     uint64_t max_samples = 0);

    void onRecord(const TraceRecord &rec) override;

    /** The dataset collected so far (appendable across traces). */
    const BranchDataset &dataset() const { return data; }
    BranchDataset &mutableDataset() { return data; }

    /** Reset the history (call between different traces/inputs). */
    void resetHistory() { ghist.reset(); }

  private:
    uint64_t target;
    unsigned histLen;
    uint64_t maxSamples;
    HistoryRegister ghist;
    BranchDataset data;
};

} // namespace bpnsp

#endif // BPNSP_ML_DATASET_HPP
