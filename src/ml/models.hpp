/**
 * @file
 * Offline-trained helper models (paper Sec. V-C).
 *
 * Two model families, both trained offline on BranchDataset samples
 * and deployed for online inference with low-precision (2-bit)
 * weights, matching the paper's CNN helper predictors built on
 * binarized-network techniques:
 *
 *  - PerceptronModel: positional weights over the global history.
 *  - CnnModel: a small 1D convolutional network (filters over history
 *    windows, ReLU, sum pooling, linear readout) that captures
 *    position-invariant patterns — exactly the property needed when
 *    dependency branches wander across history positions (Fig. 6).
 */

#ifndef BPNSP_ML_MODELS_HPP
#define BPNSP_ML_MODELS_HPP

#include <cstdint>
#include <vector>

#include "bp/helper.hpp"
#include "ml/dataset.hpp"
#include "util/rng.hpp"

namespace bpnsp {

/** Training hyperparameters shared by the models. */
struct TrainConfig
{
    unsigned epochs = 20;
    double learningRate = 0.05;
    uint64_t shuffleSeed = 0x5ade;
    /** Quantization levels per weight (2-bit => 4 levels). */
    unsigned weightBits = 2;
};

/** Offline-trained perceptron with quantized positional weights. */
class PerceptronModel : public HelperModel
{
  public:
    explicit PerceptronModel(unsigned history_length);

    /** Train on the dataset, then quantize to 2-bit weights. */
    void train(const BranchDataset &data,
               const TrainConfig &config = TrainConfig{});

    bool infer(uint64_t ip, const HistoryRegister &ghist) const override;
    uint64_t storageBits() const override;

    /** Inference on raw sample bits (for offline evaluation). */
    bool inferBits(const std::vector<uint8_t> &bits) const;

    /** Accuracy on a dataset (offline evaluation). */
    double evaluate(const BranchDataset &data) const;

  private:
    unsigned histLen;
    std::vector<int8_t> weights;   ///< quantized, one per position
    int32_t bias = 0;
    unsigned quantBits = 2;

    std::vector<double> floatWeights;
    double floatBias = 0.0;

    int32_t sumBits(const std::vector<uint8_t> &bits) const;
    void quantize();
};

/** Offline-trained 1D CNN with quantized weights. */
class CnnModel : public HelperModel
{
  public:
    /**
     * @param history_length input history bits
     * @param num_filters convolution filters
     * @param filter_width filter receptive field
     */
    CnnModel(unsigned history_length, unsigned num_filters = 8,
             unsigned filter_width = 8);

    /** Train (SGD on logistic loss), then quantize to 2-bit weights. */
    void train(const BranchDataset &data,
               const TrainConfig &config = TrainConfig{});

    bool infer(uint64_t ip, const HistoryRegister &ghist) const override;
    uint64_t storageBits() const override;

    bool inferBits(const std::vector<uint8_t> &bits) const;
    double evaluate(const BranchDataset &data) const;

  private:
    unsigned histLen;
    unsigned numFilters;
    unsigned filterWidth;
    unsigned quantBits = 2;

    // Float parameters (training) and quantized ones (inference).
    std::vector<double> convW;   ///< [filter][tap]
    std::vector<double> convB;   ///< [filter]
    std::vector<double> fcW;     ///< [filter]
    double fcB = 0.0;
    std::vector<int8_t> qConvW;
    std::vector<int8_t> qFcW;
    int32_t qFcB = 0;

    double forwardFloat(const std::vector<uint8_t> &bits,
                        std::vector<double> *pooled) const;
    int64_t forwardQuant(const std::vector<uint8_t> &bits) const;
    void quantize();
};

} // namespace bpnsp

#endif // BPNSP_ML_MODELS_HPP
