#include "ml/trainer.hpp"

#include <algorithm>

#include "analysis/h2p.hpp"
#include "bp/factory.hpp"
#include "bp/sim.hpp"
#include "core/runner.hpp"
#include "util/logging.hpp"

namespace bpnsp {

HelperExperimentResult
runHelperExperiment(const Workload &workload,
                    const std::vector<size_t> &train_inputs,
                    size_t test_input,
                    const HelperExperimentConfig &config)
{
    BPNSP_ASSERT(!train_inputs.empty());
    HelperExperimentResult result;

    // ---- 1. Screen H2Ps on the first training input. ----
    std::vector<uint64_t> targets;
    {
        auto bp = makePredictor(config.baseline);
        PredictorSim sim(*bp);
        runTrace(workload.build(train_inputs.front()), {&sim},
                 config.screenInstructions);
        const H2pCriteria criteria =
            H2pCriteria{}.scaledTo(config.screenInstructions);
        std::vector<std::pair<uint64_t, uint64_t>> ranked;  // (misp, ip)
        for (const auto &[ip, c] : sim.perBranch()) {
            if (criteria.matches(c))
                ranked.emplace_back(c.mispreds, ip);
        }
        std::sort(ranked.rbegin(), ranked.rend());
        for (size_t i = 0;
             i < std::min<size_t>(config.maxHelpers, ranked.size());
             ++i) {
            targets.push_back(ranked[i].second);
        }
    }
    if (targets.empty())
        return result;

    // ---- 2. Collect datasets over all training inputs. ----
    // The per-collector cap bounds training cost; inputs are visited
    // in order, each contributing up to maxSamplesPerInput samples.
    std::vector<std::unique_ptr<DatasetCollector>> collectors;
    for (uint64_t ip : targets) {
        collectors.push_back(std::make_unique<DatasetCollector>(
            ip, config.historyLength,
            config.maxSamplesPerInput *
                static_cast<uint64_t>(train_inputs.size())));
    }
    for (size_t input : train_inputs) {
        std::vector<TraceSink *> sinks;
        for (auto &c : collectors) {
            c->resetHistory();
            sinks.push_back(c.get());
        }
        runTrace(workload.build(input), sinks,
                 config.trainInstructions);
    }

    // ---- 3. Train one model per target branch. ----
    for (auto &collector : collectors) {
        std::unique_ptr<HelperModel> model;
        const BranchDataset &data = collector->dataset();
        if (data.samples.size() < 64) {
            // Too few samples to train anything useful; a static
            // majority model is the honest fallback.
            auto p = std::make_unique<PerceptronModel>(
                config.historyLength);
            p->train(data, config.train);
            model = std::move(p);
        } else if (config.useCnn) {
            auto cnn = std::make_unique<CnnModel>(config.historyLength);
            cnn->train(data, config.train);
            model = std::move(cnn);
        } else {
            auto p = std::make_unique<PerceptronModel>(
                config.historyLength);
            p->train(data, config.train);
            model = std::move(p);
        }
        result.models.push_back(std::move(model));
    }

    // ---- 4. Evaluate on the held-out input: baseline vs overlay. ----
    auto baseline_bp = makePredictor(config.baseline);
    PredictorSim baseline_sim(*baseline_bp);

    HelperOverlayPredictor overlay(makePredictor(config.baseline),
                                   config.historyLength + 1);
    for (size_t i = 0; i < targets.size(); ++i)
        overlay.addHelper(targets[i], result.models[i].get());
    PredictorSim overlay_sim(overlay);

    runTrace(workload.build(test_input), {&baseline_sim, &overlay_sim},
             config.testInstructions);

    result.baselineOverallAccuracy = baseline_sim.accuracy();
    result.overlayOverallAccuracy = overlay_sim.accuracy();
    for (size_t i = 0; i < targets.size(); ++i) {
        HelperBranchResult br;
        br.ip = targets[i];
        br.trainSamples = collectors[i]->dataset().samples.size();
        const auto base_it = baseline_sim.perBranch().find(targets[i]);
        const auto over_it = overlay_sim.perBranch().find(targets[i]);
        if (base_it != baseline_sim.perBranch().end()) {
            br.testExecs = base_it->second.execs;
            br.baselineAccuracy = base_it->second.accuracy();
        }
        if (over_it != overlay_sim.perBranch().end())
            br.helperAccuracy = over_it->second.accuracy();
        result.branches.push_back(br);
    }
    return result;
}

} // namespace bpnsp
