#include "ml/models.hpp"

#include <algorithm>
#include <cmath>

#include "util/logging.hpp"

namespace bpnsp {
namespace {

/** Map a history bit to a +/-1 input. */
inline double
bitInput(uint8_t bit)
{
    return bit ? 1.0 : -1.0;
}

/** Quantize a float weight to a signed `bits`-bit level of `scale`. */
int8_t
quantizeWeight(double w, double scale, unsigned bits)
{
    const int lo = -(1 << (bits - 1));
    const int hi = (1 << (bits - 1)) - 1;
    if (scale <= 0.0)
        return 0;
    const int q = static_cast<int>(std::lround(w / scale));
    return static_cast<int8_t>(std::clamp(q, lo, hi));
}

/** Largest |w| over a weight vector. */
double
maxAbs(const std::vector<double> &w)
{
    double m = 0.0;
    for (double v : w)
        m = std::max(m, std::fabs(v));
    return m;
}

} // namespace

// ------------------------------------------------------ PerceptronModel

PerceptronModel::PerceptronModel(unsigned history_length)
    : histLen(history_length), weights(history_length, 0),
      floatWeights(history_length, 0.0)
{
    BPNSP_ASSERT(history_length >= 1);
}

void
PerceptronModel::train(const BranchDataset &data,
                       const TrainConfig &config)
{
    BPNSP_ASSERT(data.historyLength >= histLen,
                 "dataset history too short");
    quantBits = config.weightBits;
    Rng rng(config.shuffleSeed);

    std::vector<size_t> order(data.samples.size());
    for (size_t i = 0; i < order.size(); ++i)
        order[i] = i;

    for (unsigned epoch = 0; epoch < config.epochs; ++epoch) {
        // Fisher-Yates reshuffle per epoch.
        for (size_t i = order.size(); i > 1; --i)
            std::swap(order[i - 1], order[rng.below(i)]);
        for (size_t idx : order) {
            const HistorySample &s = data.samples[idx];
            double sum = floatBias;
            for (unsigned p = 0; p < histLen; ++p)
                sum += floatWeights[p] * bitInput(s.bits[p]);
            const bool pred = sum >= 0.0;
            // Perceptron rule with margin.
            if (pred != s.taken || std::fabs(sum) < 1.0) {
                const double dir = s.taken ? 1.0 : -1.0;
                for (unsigned p = 0; p < histLen; ++p) {
                    floatWeights[p] += config.learningRate * dir *
                                       bitInput(s.bits[p]);
                }
                floatBias += config.learningRate * dir;
            }
        }
    }
    quantize();
}

void
PerceptronModel::quantize()
{
    const double scale =
        maxAbs(floatWeights) /
        static_cast<double>((1 << (quantBits - 1)) - 1 + 1e-9);
    for (unsigned p = 0; p < histLen; ++p)
        weights[p] = quantizeWeight(floatWeights[p],
                                    std::max(scale, 1e-9), quantBits);
    bias = static_cast<int32_t>(
        std::lround(floatBias / std::max(scale, 1e-9)));
}

int32_t
PerceptronModel::sumBits(const std::vector<uint8_t> &bits) const
{
    int32_t sum = bias;
    for (unsigned p = 0; p < histLen; ++p)
        sum += weights[p] * (bits[p] ? 1 : -1);
    return sum;
}

bool
PerceptronModel::inferBits(const std::vector<uint8_t> &bits) const
{
    return sumBits(bits) >= 0;
}

bool
PerceptronModel::infer(uint64_t, const HistoryRegister &ghist) const
{
    int32_t sum = bias;
    for (unsigned p = 0; p < histLen; ++p)
        sum += weights[p] * (ghist.at(p) ? 1 : -1);
    return sum >= 0;
}

double
PerceptronModel::evaluate(const BranchDataset &data) const
{
    if (data.samples.empty())
        return 0.0;
    uint64_t correct = 0;
    for (const auto &s : data.samples)
        correct += (inferBits(s.bits) == s.taken);
    return static_cast<double>(correct) /
           static_cast<double>(data.samples.size());
}

uint64_t
PerceptronModel::storageBits() const
{
    return static_cast<uint64_t>(histLen) * quantBits + 16;
}

// ------------------------------------------------------------ CnnModel

CnnModel::CnnModel(unsigned history_length, unsigned num_filters,
                   unsigned filter_width)
    : histLen(history_length), numFilters(num_filters),
      filterWidth(filter_width),
      convW(static_cast<size_t>(num_filters) * filter_width, 0.0),
      convB(num_filters, 0.0), fcW(num_filters, 0.0),
      qConvW(static_cast<size_t>(num_filters) * filter_width, 0),
      qFcW(num_filters, 0)
{
    BPNSP_ASSERT(history_length >= filter_width);
    BPNSP_ASSERT(num_filters >= 1 && filter_width >= 2);
    // Small deterministic initialization breaks filter symmetry.
    Rng rng(0xc44);
    for (auto &w : convW)
        w = (rng.uniform() - 0.5) * 0.2;
    for (auto &w : fcW)
        w = (rng.uniform() - 0.5) * 0.2;
}

double
CnnModel::forwardFloat(const std::vector<uint8_t> &bits,
                       std::vector<double> *pooled) const
{
    const unsigned positions = histLen - filterWidth + 1;
    double out = fcB;
    for (unsigned f = 0; f < numFilters; ++f) {
        double pool = 0.0;
        for (unsigned pos = 0; pos < positions; ++pos) {
            double act = convB[f];
            for (unsigned t = 0; t < filterWidth; ++t) {
                act += convW[f * filterWidth + t] *
                       bitInput(bits[pos + t]);
            }
            if (act > 0.0)
                pool += act;   // ReLU + sum pooling
        }
        pool /= static_cast<double>(positions);
        if (pooled != nullptr)
            (*pooled)[f] = pool;
        out += fcW[f] * pool;
    }
    return out;
}

void
CnnModel::train(const BranchDataset &data, const TrainConfig &config)
{
    BPNSP_ASSERT(data.historyLength >= histLen,
                 "dataset history too short");
    quantBits = config.weightBits;
    Rng rng(config.shuffleSeed);
    const unsigned positions = histLen - filterWidth + 1;

    std::vector<size_t> order(data.samples.size());
    for (size_t i = 0; i < order.size(); ++i)
        order[i] = i;

    std::vector<double> pooled(numFilters, 0.0);
    for (unsigned epoch = 0; epoch < config.epochs; ++epoch) {
        for (size_t i = order.size(); i > 1; --i)
            std::swap(order[i - 1], order[rng.below(i)]);
        for (size_t idx : order) {
            const HistorySample &s = data.samples[idx];
            const double logit = forwardFloat(s.bits, &pooled);
            const double prob = 1.0 / (1.0 + std::exp(-logit));
            const double err =
                prob - (s.taken ? 1.0 : 0.0);   // dLoss/dLogit
            const double lr = config.learningRate;

            // Readout gradients.
            for (unsigned f = 0; f < numFilters; ++f)
                fcW[f] -= lr * err * pooled[f];
            fcB -= lr * err;

            // Convolution gradients (through ReLU + mean pooling).
            for (unsigned f = 0; f < numFilters; ++f) {
                const double up =
                    err * fcW[f] / static_cast<double>(positions);
                for (unsigned pos = 0; pos < positions; ++pos) {
                    double act = convB[f];
                    for (unsigned t = 0; t < filterWidth; ++t) {
                        act += convW[f * filterWidth + t] *
                               bitInput(s.bits[pos + t]);
                    }
                    if (act <= 0.0)
                        continue;   // ReLU gate
                    for (unsigned t = 0; t < filterWidth; ++t) {
                        convW[f * filterWidth + t] -=
                            lr * up * bitInput(s.bits[pos + t]);
                    }
                    convB[f] -= lr * up;
                }
            }
        }
    }
    quantize();
}

void
CnnModel::quantize()
{
    const int levels = (1 << (quantBits - 1)) - 1;
    const double conv_scale =
        std::max(maxAbs(convW) / std::max(levels, 1), 1e-9);
    for (size_t i = 0; i < convW.size(); ++i)
        qConvW[i] = quantizeWeight(convW[i], conv_scale, quantBits);
    const double fc_scale =
        std::max(maxAbs(fcW) / std::max(levels, 1), 1e-9);
    for (size_t i = 0; i < fcW.size(); ++i)
        qFcW[i] = quantizeWeight(fcW[i], fc_scale, quantBits);
    // Fold the biases into integer units of the product scale.
    qFcB = static_cast<int32_t>(
        std::lround(fcB / (conv_scale * fc_scale)));
}

int64_t
CnnModel::forwardQuant(const std::vector<uint8_t> &bits) const
{
    const unsigned positions = histLen - filterWidth + 1;
    int64_t out = qFcB;
    for (unsigned f = 0; f < numFilters; ++f) {
        int64_t pool = 0;
        for (unsigned pos = 0; pos < positions; ++pos) {
            int64_t act = 0;
            for (unsigned t = 0; t < filterWidth; ++t) {
                act += qConvW[f * filterWidth + t] *
                       (bits[pos + t] ? 1 : -1);
            }
            if (act > 0)
                pool += act;
        }
        out += static_cast<int64_t>(qFcW[f]) * pool;
    }
    return out;
}

bool
CnnModel::inferBits(const std::vector<uint8_t> &bits) const
{
    return forwardQuant(bits) >= 0;
}

bool
CnnModel::infer(uint64_t, const HistoryRegister &ghist) const
{
    std::vector<uint8_t> bits(histLen);
    for (unsigned p = 0; p < histLen; ++p)
        bits[p] = ghist.at(p) ? 1 : 0;
    return inferBits(bits);
}

double
CnnModel::evaluate(const BranchDataset &data) const
{
    if (data.samples.empty())
        return 0.0;
    uint64_t correct = 0;
    for (const auto &s : data.samples)
        correct += (inferBits(s.bits) == s.taken);
    return static_cast<double>(correct) /
           static_cast<double>(data.samples.size());
}

uint64_t
CnnModel::storageBits() const
{
    return (static_cast<uint64_t>(numFilters) * filterWidth +
            numFilters) *
               quantBits +
           32;
}

} // namespace bpnsp
