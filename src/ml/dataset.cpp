#include "ml/dataset.hpp"

#include "util/logging.hpp"

namespace bpnsp {

DatasetCollector::DatasetCollector(uint64_t target_ip,
                                   unsigned history_length,
                                   uint64_t max_samples)
    : target(target_ip), histLen(history_length),
      maxSamples(max_samples), ghist(history_length + 1)
{
    BPNSP_ASSERT(history_length >= 1);
    data.ip = target_ip;
    data.historyLength = history_length;
}

void
DatasetCollector::onRecord(const TraceRecord &rec)
{
    if (!rec.isCondBranch())
        return;
    if (rec.ip == target &&
        (maxSamples == 0 || data.samples.size() < maxSamples)) {
        HistorySample sample;
        sample.bits.resize(histLen);
        for (unsigned i = 0; i < histLen; ++i)
            sample.bits[i] = ghist.at(i) ? 1 : 0;
        sample.taken = rec.taken;
        data.samples.push_back(std::move(sample));
    }
    ghist.push(rec.taken);
}

} // namespace bpnsp
