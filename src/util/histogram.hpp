/**
 * @file
 * Histograms with arbitrary bin edges, used to regenerate the paper's
 * distribution figures (Fig. 3, Fig. 9) whose bins are hand-chosen.
 */

#ifndef BPNSP_UTIL_HISTOGRAM_HPP
#define BPNSP_UTIL_HISTOGRAM_HPP

#include <cstdint>
#include <string>
#include <vector>

namespace bpnsp {

/**
 * A histogram over double-valued observations with explicit bin edges.
 *
 * Edges e0 < e1 < ... < eN define N bins [e_i, e_{i+1}); the final bin
 * is closed on the right so that a value equal to the last edge counts.
 * Values outside [e0, eN] are tallied separately as underflow/overflow.
 */
class Histogram
{
  public:
    /** Construct from explicit, strictly increasing edges. */
    explicit Histogram(std::vector<double> edges);

    /** Edges at a fixed step: [lo, lo+step, ..., hi]. */
    static Histogram linear(double lo, double hi, double step);

    /** Add one observation. */
    void add(double value);

    /** Add an observation with an integer weight. */
    void add(double value, uint64_t weight);

    /** Number of bins. */
    size_t numBins() const { return counts.size(); }

    /** Count in bin i. */
    uint64_t count(size_t i) const { return counts.at(i); }

    /** Total in-range observations. */
    uint64_t total() const { return inRange; }

    /** Fraction of in-range observations in bin i (0 when empty). */
    double fraction(size_t i) const;

    /** Inclusive lower edge of bin i. */
    double binLo(size_t i) const { return binEdges.at(i); }

    /** Exclusive upper edge of bin i. */
    double binHi(size_t i) const { return binEdges.at(i + 1); }

    uint64_t underflowCount() const { return underflow; }
    uint64_t overflowCount() const { return overflow; }

    /** Human-readable label for bin i, e.g. "100-1K". */
    std::string binLabel(size_t i) const;

    /** Render as an ASCII bar chart (one line per bin). */
    std::string render(unsigned bar_width = 40) const;

  private:
    std::vector<double> binEdges;
    std::vector<uint64_t> counts;
    uint64_t inRange = 0;
    uint64_t underflow = 0;
    uint64_t overflow = 0;
};

/** Format a count compactly, e.g. 1500 -> "1.5K", 2000000 -> "2M". */
std::string compactNumber(double v);

} // namespace bpnsp

#endif // BPNSP_UTIL_HISTOGRAM_HPP
