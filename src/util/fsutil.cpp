#include "util/fsutil.hpp"

#include <cerrno>
#include <cstring>
#include <filesystem>
#include <system_error>

#include <fcntl.h>
#include <signal.h>
#include <unistd.h>

namespace bpnsp {

Status
syncStream(std::FILE *file, const std::string &path)
{
    if (std::fflush(file) != 0) {
        return Status::ioError("cannot flush " + path + ": " +
                               std::strerror(errno));
    }
    if (::fsync(::fileno(file)) != 0) {
        return Status::ioError("cannot fsync " + path + ": " +
                               std::strerror(errno));
    }
    return Status();
}

Status
syncDirectory(const std::string &dir)
{
    const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
    if (fd < 0) {
        return Status::ioError("cannot open directory " + dir +
                               " for fsync: " + std::strerror(errno));
    }
    const int rc = ::fsync(fd);
    const int err = errno;
    ::close(fd);
    if (rc != 0) {
        return Status::ioError("cannot fsync directory " + dir + ": " +
                               std::strerror(err));
    }
    return Status();
}

Status
atomicPublishFile(const std::string &from, const std::string &to)
{
    std::error_code ec;
    std::filesystem::rename(from, to, ec);
    if (ec) {
        return Status::ioError("cannot rename " + from + " to " + to +
                               ": " + ec.message());
    }
    const std::string dir =
        std::filesystem::path(to).parent_path().string();
    return dir.empty() ? Status() : syncDirectory(dir);
}

bool
processAlive(pid_t pid)
{
    if (pid <= 0)
        return false;
    if (::kill(pid, 0) == 0)
        return true;
    return errno == EPERM;   // exists, but owned by someone else
}

} // namespace bpnsp
