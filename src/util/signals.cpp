#include "util/signals.hpp"

#include <atomic>
#include <cerrno>
#include <csignal>
#include <cstdint>
#include <cstdlib>
#include <cstring>

#include <fcntl.h>
#include <unistd.h>

#include "util/cancel.hpp"

namespace bpnsp::signals {

namespace {

std::atomic<int> gFired{0};
std::atomic<int> gLastSignal{0};
std::atomic<bool> gDrain{false};
std::atomic<bool> gInstalled{false};
std::atomic<FirstSignalHook> gHook{nullptr};

void
handler(int sig)
{
    const int nth = gFired.fetch_add(1, std::memory_order_relaxed);
    gLastSignal.store(sig, std::memory_order_relaxed);
    if (nth >= 1) {
        // Second signal: the user means *now*.
        std::_Exit(128 + sig);
    }
    globalCancelToken().requestCancel(CancelCause::Signal);
    if (gDrain.load(std::memory_order_relaxed))
        return;   // a supervisor drains, flushes, and exits
    if (FirstSignalHook hook = gHook.load(std::memory_order_relaxed);
        hook != nullptr)
        hook(sig);
    std::signal(sig, SIG_DFL);
    std::raise(sig);
}

} // namespace

void
installHandlers()
{
    bool expected = false;
    if (!gInstalled.compare_exchange_strong(expected, true))
        return;
    struct sigaction sa;
    std::memset(&sa, 0, sizeof(sa));
    sa.sa_handler = handler;
    sigemptyset(&sa.sa_mask);
    ::sigaction(SIGINT, &sa, nullptr);
    ::sigaction(SIGTERM, &sa, nullptr);
}

void
setFirstSignalHook(FirstSignalHook hook)
{
    gHook.store(hook, std::memory_order_relaxed);
}

void
setDrainMode(bool graceful)
{
    gDrain.store(graceful, std::memory_order_relaxed);
}

bool
drainMode()
{
    return gDrain.load(std::memory_order_relaxed);
}

void
installGracefulDrain()
{
    setDrainMode(true);
    installHandlers();
}

int
firedCount()
{
    return gFired.load(std::memory_order_relaxed);
}

int
lastSignal()
{
    return gLastSignal.load(std::memory_order_relaxed);
}

namespace {

int gChildPipe[2] = {-1, -1};

void
childHandler(int)
{
    // Async-signal-safe: one write, errno preserved for the
    // interrupted code. A full pipe is fine — the byte already
    // sitting there wakes the poller just as well.
    const int saved = errno;
    const uint8_t byte = 1;
    [[maybe_unused]] ssize_t n = ::write(gChildPipe[1], &byte, 1);
    errno = saved;
}

} // namespace

int
installChildNotifyPipe()
{
    static std::atomic<bool> installed{false};
    bool expected = false;
    if (!installed.compare_exchange_strong(expected, true))
        return gChildPipe[0];
    if (::pipe(gChildPipe) != 0) {
        gChildPipe[0] = gChildPipe[1] = -1;
        return -1;
    }
    for (const int fd : gChildPipe) {
        const int flags = ::fcntl(fd, F_GETFL, 0);
        if (flags >= 0)
            ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
        ::fcntl(fd, F_SETFD, FD_CLOEXEC);
    }
    struct sigaction sa;
    std::memset(&sa, 0, sizeof(sa));
    sa.sa_handler = childHandler;
    sigemptyset(&sa.sa_mask);
    sa.sa_flags = SA_RESTART | SA_NOCLDSTOP;
    ::sigaction(SIGCHLD, &sa, nullptr);
    return gChildPipe[0];
}

} // namespace bpnsp::signals
