/**
 * @file
 * Minimal command-line option parsing for the bench and example
 * binaries. Supports --name=value, --name value, and boolean --flag.
 *
 * The environment variable BPNSP_SCALE (a positive double) globally
 * scales experiment sizes: 1.0 is the quick default; larger values move
 * toward the paper's full 30M-instruction-slice methodology.
 */

#ifndef BPNSP_UTIL_OPTIONS_HPP
#define BPNSP_UTIL_OPTIONS_HPP

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace bpnsp {

/**
 * Declarative command-line parser.
 *
 * Every parser pre-registers the standard telemetry options
 * --metrics-out=FILE (JSON run report on exit) and --progress
 * (instr/sec heartbeat), plus the standard robustness option
 * --faults=SPEC (deterministic fault injection); binaries activate
 * them by passing the parsed parser to obs::configureFromOptions() and
 * faultsim::configureFromOptions() once after parse().
 */
class OptionParser
{
  public:
    explicit OptionParser(std::string description = "");

    /** Register an integer option with a default. */
    void addInt(const std::string &name, int64_t def,
                const std::string &help);

    /** Register a floating-point option with a default. */
    void addDouble(const std::string &name, double def,
                   const std::string &help);

    /** Register a string option with a default. */
    void addString(const std::string &name, const std::string &def,
                   const std::string &help);

    /** Register a boolean flag (default false). */
    void addFlag(const std::string &name, const std::string &help);

    /**
     * Parse argv. On --help prints usage and exits 0; on a malformed or
     * unknown option calls fatal().
     */
    void parse(int argc, const char *const *argv);

    int64_t getInt(const std::string &name) const;
    double getDouble(const std::string &name) const;
    const std::string &getString(const std::string &name) const;
    bool getFlag(const std::string &name) const;

    /** Usage text. */
    std::string usage() const;

    /** argv[0] as seen by parse() ("" before parse). */
    const std::string &binaryName() const { return programName; }

  private:
    enum class Kind { Int, Double, String, Flag };

    struct Option
    {
        Kind kind;
        std::string help;
        std::string value;    // canonical textual value
    };

    std::string desc;
    std::string programName;
    std::map<std::string, Option> options;

    const Option &find(const std::string &name, Kind kind) const;
};

/**
 * Global experiment scale factor from BPNSP_SCALE (default 1.0).
 * Multiplies slice lengths and trace lengths in bench harnesses.
 */
double experimentScale();

} // namespace bpnsp

#endif // BPNSP_UTIL_OPTIONS_HPP
