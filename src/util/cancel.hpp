/**
 * @file
 * Cooperative cancellation and deadlines for long-running work.
 *
 * A CancelToken is a small shared flag + optional deadline that
 * delivery loops poll at coarse granularity (core::runner checks every
 * ~256K delivered instructions, tracestore replay between chunks).
 * Cancellation is always *cooperative*: nothing is killed, the loop
 * notices the token and unwinds with Status::Cancelled or
 * Status::DeadlineExceeded through the normal error taxonomy, so
 * journals, run reports, and cache state stay consistent.
 *
 * Tokens chain: a token constructed with a parent reports the parent's
 * cancellation too, which is how a campaign composes "this cell's
 * deadline" on top of "the whole campaign was interrupted" — firing
 * the cell token abandons one cell, firing the campaign (or global)
 * token abandons everything downstream.
 *
 * The *global* token is the process-wide root: the first SIGINT or
 * SIGTERM requests cancellation on it (see obs/report.hpp signal
 * handling), so every instrumented loop in the process drains
 * gracefully. Library code that wants to honor cancellation without
 * signature churn reads the *current* token — a thread-local pointer
 * defaulting to the global token that callers override with a
 * CancelScope around a unit of work. Worker threads do NOT inherit the
 * spawning thread's scope; fan-out code (tracestore::replayShards)
 * captures the current token before spawning and re-installs it inside
 * each worker.
 *
 * Cost when idle: one relaxed atomic load per poll for an unarmed
 * token, plus one steady_clock read when a deadline is armed — cheap
 * enough that polling sites never need to be gated.
 */

#ifndef BPNSP_UTIL_CANCEL_HPP
#define BPNSP_UTIL_CANCEL_HPP

#include <atomic>
#include <chrono>
#include <cstdint>

#include "util/status.hpp"

namespace bpnsp {

/** Why a token fired (stable names, usable from signal handlers). */
enum class CancelCause : uint8_t
{
    None = 0,
    User,       ///< explicit requestCancel() call
    Signal,     ///< SIGINT/SIGTERM (via the global token)
    Deadline,   ///< armed deadline expired
    Watchdog,   ///< a supervisor detected stalled progress
};

/** Stable human-readable name of a cause ("signal", "deadline", ...). */
const char *cancelCauseName(CancelCause cause);

/**
 * Shared cancellation flag + optional deadline, pollable from any
 * thread. All members are async-signal-safe except the constructor;
 * requestCancel() in particular is a single relaxed atomic store, so
 * signal handlers may call it directly.
 */
class CancelToken
{
  public:
    /** @param parent checked first by every poll (not owned). */
    explicit CancelToken(CancelToken *parent = nullptr)
        : chain(parent)
    {
    }

    CancelToken(const CancelToken &) = delete;
    CancelToken &operator=(const CancelToken &) = delete;

    /** Fire the token (idempotent; first cause wins). */
    void
    requestCancel(CancelCause why = CancelCause::User)
    {
        uint8_t expected = 0;
        firedCause.compare_exchange_strong(
            expected, static_cast<uint8_t>(why),
            std::memory_order_relaxed);
    }

    /**
     * Arm a deadline: polls at or after this instant report
     * DeadlineExceeded. Re-arming replaces the previous deadline;
     * kNoDeadline disarms.
     */
    void
    setDeadline(std::chrono::steady_clock::time_point when)
    {
        deadlineNs.store(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                when.time_since_epoch())
                .count(),
            std::memory_order_relaxed);
    }

    /** Arm a deadline `ms` milliseconds from now (0 disarms). */
    void setDeadlineAfterMs(uint64_t ms);

    /** Disarm the deadline and clear the fired state (reuse/tests). */
    void
    reset()
    {
        firedCause.store(0, std::memory_order_relaxed);
        deadlineNs.store(kNoDeadline, std::memory_order_relaxed);
    }

    /**
     * True once this token (or an ancestor) fired or its deadline
     * passed. An expired deadline latches into the fired state, so the
     * cause survives later disarming.
     */
    bool
    cancelled() const
    {
        if (chain != nullptr && chain->cancelled())
            return true;
        if (firedCause.load(std::memory_order_relaxed) != 0)
            return true;
        return deadlineExpired();
    }

    /**
     * Poll: Ok while live, Status::Cancelled /
     * Status::DeadlineExceeded once fired, with the cause in the
     * message. Ancestors are polled first, so a campaign-wide
     * interrupt outranks a cell deadline that expired at the same
     * moment.
     */
    Status check() const;

    /** The first cause that fired this token (None while live). */
    CancelCause
    cause() const
    {
        if (chain != nullptr && chain->cause() != CancelCause::None)
            return chain->cause();
        if (deadlineExpired()) {
            // Latch so cause() and check() agree from now on.
            const_cast<CancelToken *>(this)->requestCancel(
                CancelCause::Deadline);
        }
        return static_cast<CancelCause>(
            firedCause.load(std::memory_order_relaxed));
    }

    /** The parent this token chains to (nullptr for a root). */
    CancelToken *parent() const { return chain; }

    static constexpr int64_t kNoDeadline = INT64_MAX;

  private:
    bool
    deadlineExpired() const
    {
        const int64_t dl = deadlineNs.load(std::memory_order_relaxed);
        if (dl == kNoDeadline)
            return false;
        return std::chrono::duration_cast<std::chrono::nanoseconds>(
                   std::chrono::steady_clock::now().time_since_epoch())
                   .count() >= dl;
    }

    CancelToken *const chain;
    std::atomic<uint8_t> firedCause{0};
    std::atomic<int64_t> deadlineNs{kNoDeadline};
};

/**
 * The process-wide root token. Signal handlers fire it with
 * CancelCause::Signal; every runner/replay loop that has no narrower
 * scope installed polls it by default.
 */
CancelToken &globalCancelToken();

/**
 * The token the calling thread's work should honor: the innermost
 * CancelScope, or the global token when none is active. Never nullptr.
 */
CancelToken *currentCancelToken();

/**
 * RAII thread-local override of currentCancelToken(). Campaign cells,
 * tests, and shard workers wrap their work in a scope so library code
 * deep below observes the narrowest token without parameter plumbing.
 */
class CancelScope
{
  public:
    explicit CancelScope(CancelToken &token);
    ~CancelScope();

    CancelScope(const CancelScope &) = delete;
    CancelScope &operator=(const CancelScope &) = delete;

  private:
    CancelToken *saved;
};

/**
 * Sleep for `ms`, waking early (and returning the token's status) if
 * the current cancel token fires. Used by retry backoff so a
 * campaign interrupt never waits out a backoff window.
 */
Status cancellableSleepMs(uint64_t ms);

} // namespace bpnsp

#endif // BPNSP_UTIL_CANCEL_HPP
