/**
 * @file
 * Shared SIGINT/SIGTERM graceful-drain handling.
 *
 * Every long-lived binary in this repository wants the same signal
 * discipline: the *first* SIGINT/SIGTERM fires the process-global
 * cancel token (util/cancel.hpp) so cooperative loops unwind, and the
 * *second* force-exits immediately (128+sig) because the user means
 * *now*. What happens between those two events differs by binary:
 *
 *  - One-shot binaries (benches, examples) want a last-gasp hook that
 *    flushes the pending --metrics-out run report and re-raises, so a
 *    Ctrl-C'd run still leaves its telemetry behind
 *    (obs::installSignalHandlers registers that hook here).
 *  - Supervisors (`bpnsp_campaign`, `bpnsp_served`) own their drain:
 *    the first signal only fires the token; the supervisor finishes
 *    in-flight work, flushes journals/reports itself, and exits with
 *    an honest status. That is *drain mode*.
 *
 * This helper owns the sigaction plumbing, the signal counting, and
 * the mode switch, so the two supervisors and the obs layer share one
 * handler instead of each installing their own. The handler itself
 * only touches async-signal-safe state (atomics and the registered
 * hook's own discipline); see obs/report.cpp for the rationale behind
 * the deliberately non-signal-safe report-flush hook.
 */

#ifndef BPNSP_UTIL_SIGNALS_HPP
#define BPNSP_UTIL_SIGNALS_HPP

namespace bpnsp::signals {

/**
 * Hook invoked from the handler on the first signal when drain mode is
 * off. After the hook returns, the handler re-raises the signal with
 * default disposition, so the exit status reports the signal honestly.
 * The hook must tolerate running in signal context.
 */
using FirstSignalHook = void (*)(int sig);

/**
 * Install the shared SIGINT/SIGTERM handler (idempotent). First
 * signal: fire the global cancel token with CancelCause::Signal, then
 * either return (drain mode) or run the hook and re-raise. Second
 * signal: _Exit(128+sig) unconditionally.
 */
void installHandlers();

/** Register the first-signal hook (nullptr clears). */
void setFirstSignalHook(FirstSignalHook hook);

/**
 * Drain mode: when on, the first signal only fires the cancel token —
 * the caller owns finishing in-flight work, flushing state, and
 * exiting. Off (the default), the first signal runs the hook and dies.
 */
void setDrainMode(bool graceful);

/** Current drain mode. */
bool drainMode();

/** installHandlers() + setDrainMode(true), for supervisors. */
void installGracefulDrain();

/** Signals observed since install (0 = none yet). */
int firedCount();

/** The most recent signal number delivered (0 = none yet). */
int lastSignal();

/**
 * Install a SIGCHLD handler that writes one byte into a self-pipe and
 * return the pipe's read end (non-blocking). A supervisor polls that
 * fd to learn "some child changed state" promptly instead of waking
 * on a timer to waitpid(); the handler itself is async-signal-safe
 * (one write(), EAGAIN ignored — a saturated pipe still wakes the
 * poller). Idempotent: repeat calls return the same fd. The handler
 * sets SA_NOCLDSTOP (job-control stops are not deaths) and restarts
 * interrupted syscalls where the OS allows.
 */
int installChildNotifyPipe();

} // namespace bpnsp::signals

#endif // BPNSP_UTIL_SIGNALS_HPP
