#include "util/stats.hpp"

#include <algorithm>
#include <cmath>

#include "util/logging.hpp"

namespace bpnsp {

void
OnlineStats::add(double x)
{
    if (n == 0) {
        lo = hi = x;
    } else {
        lo = std::min(lo, x);
        hi = std::max(hi, x);
    }
    ++n;
    total += x;
    const double delta = x - mu;
    mu += delta / static_cast<double>(n);
    m2 += delta * (x - mu);
}

double
OnlineStats::variance() const
{
    if (n < 2)
        return 0.0;
    return m2 / static_cast<double>(n);
}

double
OnlineStats::stddev() const
{
    return std::sqrt(variance());
}

void
OnlineStats::merge(const OnlineStats &other)
{
    if (other.n == 0)
        return;
    if (n == 0) {
        *this = other;
        return;
    }
    const double delta = other.mu - mu;
    const uint64_t combined = n + other.n;
    const double na = static_cast<double>(n);
    const double nb = static_cast<double>(other.n);
    mu = (na * mu + nb * other.mu) / (na + nb);
    m2 = m2 + other.m2 + delta * delta * na * nb / (na + nb);
    lo = std::min(lo, other.lo);
    hi = std::max(hi, other.hi);
    total += other.total;
    n = combined;
}

double
median(std::vector<double> values)
{
    if (values.empty())
        return 0.0;
    std::sort(values.begin(), values.end());
    const size_t n = values.size();
    if (n % 2 == 1)
        return values[n / 2];
    return 0.5 * (values[n / 2 - 1] + values[n / 2]);
}

uint64_t
medianU64(std::vector<uint64_t> values)
{
    if (values.empty())
        return 0;
    std::sort(values.begin(), values.end());
    return values[values.size() / 2];
}

double
geomean(const std::vector<double> &values)
{
    if (values.empty())
        return 0.0;
    double log_sum = 0.0;
    for (double v : values) {
        BPNSP_ASSERT(v > 0.0, "geomean requires positive values");
        log_sum += std::log(v);
    }
    return std::exp(log_sum / static_cast<double>(values.size()));
}

double
mean(const std::vector<double> &values)
{
    if (values.empty())
        return 0.0;
    double sum = 0.0;
    for (double v : values)
        sum += v;
    return sum / static_cast<double>(values.size());
}

double
percentile(std::vector<double> values, double p)
{
    if (values.empty())
        return 0.0;
    BPNSP_ASSERT(p >= 0.0 && p <= 100.0);
    std::sort(values.begin(), values.end());
    const double rank = p / 100.0 * static_cast<double>(values.size() - 1);
    const size_t below = static_cast<size_t>(rank);
    const double frac = rank - static_cast<double>(below);
    if (below + 1 >= values.size())
        return values.back();
    return values[below] * (1.0 - frac) + values[below + 1] * frac;
}

} // namespace bpnsp
