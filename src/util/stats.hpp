/**
 * @file
 * Small statistics helpers: online mean/variance, medians, geometric
 * means. Used throughout the analysis pipeline.
 */

#ifndef BPNSP_UTIL_STATS_HPP
#define BPNSP_UTIL_STATS_HPP

#include <cstdint>
#include <vector>

namespace bpnsp {

/** Welford online accumulator for mean and variance. */
class OnlineStats
{
  public:
    /** Add one observation. */
    void add(double x);

    /** Number of observations so far. */
    uint64_t count() const { return n; }

    /**
     * True when nothing was observed. Callers that serialize stats
     * must check this: min()/max()/mean() return 0.0 when empty, which
     * is indistinguishable from a real observation of 0 (the JSON
     * exporter emits null for empty stats — see obs::statsJson()).
     */
    bool empty() const { return n == 0; }

    /** Sample mean (0 when empty; see empty()). */
    double mean() const { return n ? mu : 0.0; }

    /** Population variance (0 when fewer than 2 observations). */
    double variance() const;

    /** Population standard deviation. */
    double stddev() const;

    /** Smallest observation (0 when empty; see empty()). */
    double min() const { return n ? lo : 0.0; }

    /** Largest observation (0 when empty; see empty()). */
    double max() const { return n ? hi : 0.0; }

    /** Sum of observations. */
    double sum() const { return total; }

    /** Merge another accumulator into this one. */
    void merge(const OnlineStats &other);

  private:
    uint64_t n = 0;
    double mu = 0.0;
    double m2 = 0.0;
    double lo = 0.0;
    double hi = 0.0;
    double total = 0.0;
};

/** Median of a vector (copies and sorts; 0 when empty). */
double median(std::vector<double> values);

/** Median of unsigned integers (0 when empty). */
uint64_t medianU64(std::vector<uint64_t> values);

/** Geometric mean of strictly positive values (0 when empty). */
double geomean(const std::vector<double> &values);

/** Arithmetic mean (0 when empty). */
double mean(const std::vector<double> &values);

/** p-th percentile (0 <= p <= 100) by linear interpolation. */
double percentile(std::vector<double> values, double p);

} // namespace bpnsp

#endif // BPNSP_UTIL_STATS_HPP
