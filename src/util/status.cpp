#include "util/status.hpp"

namespace bpnsp {

const char *
statusCodeName(StatusCode code)
{
    switch (code) {
      case StatusCode::Ok:
        return "Ok";
      case StatusCode::IoError:
        return "IoError";
      case StatusCode::CorruptData:
        return "CorruptData";
      case StatusCode::Busy:
        return "Busy";
      case StatusCode::Cancelled:
        return "Cancelled";
      case StatusCode::DeadlineExceeded:
        return "DeadlineExceeded";
      case StatusCode::InvalidArgument:
        return "InvalidArgument";
      case StatusCode::Unavailable:
        return "Unavailable";
    }
    return "Unknown";
}

std::string
Status::str() const
{
    if (ok())
        return "ok";
    std::string out = statusCodeName(c);
    if (!msg.empty()) {
        out += ": ";
        out += msg;
    }
    return out;
}

} // namespace bpnsp
