/**
 * @file
 * Bit manipulation and hashing helpers shared by predictors and caches.
 */

#ifndef BPNSP_UTIL_BITOPS_HPP
#define BPNSP_UTIL_BITOPS_HPP

#include <cstdint>

namespace bpnsp {

/** Extract bits [lo, lo+len) of value. */
inline uint64_t
bits(uint64_t value, unsigned lo, unsigned len)
{
    return (value >> lo) & ((len >= 64) ? ~0ull : ((1ull << len) - 1));
}

/** True iff x is a power of two (and nonzero). */
inline bool
isPowerOfTwo(uint64_t x)
{
    return x != 0 && (x & (x - 1)) == 0;
}

/** Ceil of log2; log2Ceil(1) == 0. */
inline unsigned
log2Ceil(uint64_t x)
{
    unsigned n = 0;
    uint64_t v = 1;
    while (v < x) {
        v <<= 1;
        ++n;
    }
    return n;
}

/** Floor of log2; log2Floor(1) == 0. Undefined for 0. */
inline unsigned
log2Floor(uint64_t x)
{
    unsigned n = 0;
    while (x >>= 1)
        ++n;
    return n;
}

/** Finalizer from MurmurHash3; a strong 64-bit mixer. */
inline uint64_t
mix64(uint64_t k)
{
    k ^= k >> 33;
    k *= 0xff51afd7ed558ccdull;
    k ^= k >> 33;
    k *= 0xc4ceb9fe1a85ec53ull;
    k ^= k >> 33;
    return k;
}

/** Combine two hashes (boost-style). */
inline uint64_t
hashCombine(uint64_t a, uint64_t b)
{
    return a ^ (mix64(b) + 0x9e3779b97f4a7c15ull + (a << 6) + (a >> 2));
}

/** XOR-fold a 64-bit value down to width bits. */
inline uint64_t
foldTo(uint64_t value, unsigned width)
{
    if (width == 0 || width >= 64)
        return value;
    uint64_t folded = 0;
    while (value != 0) {
        folded ^= value & ((1ull << width) - 1);
        value >>= width;
    }
    return folded;
}

} // namespace bpnsp

#endif // BPNSP_UTIL_BITOPS_HPP
