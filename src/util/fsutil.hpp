/**
 * @file
 * Crash-safety filesystem primitives shared by the trace store layers:
 * durable flush, atomic publish (rename + directory sync), and process
 * liveness probing for lockfile/staging-file garbage collection.
 *
 * The publish discipline these helpers implement is the standard
 * write-ahead pattern: finish the file under a private name, fsync its
 * bytes, rename() it onto the public name (atomic within a
 * filesystem), then fsync the containing directory so the rename
 * itself survives a crash. A reader can therefore only ever observe a
 * missing entry or a complete one — never a torn prefix.
 */

#ifndef BPNSP_UTIL_FSUTIL_HPP
#define BPNSP_UTIL_FSUTIL_HPP

#include <cstdio>
#include <string>

#include <sys/types.h>

#include "util/status.hpp"

namespace bpnsp {

/** fflush + fsync an open stdio stream (durability barrier). */
Status syncStream(std::FILE *file, const std::string &path);

/** fsync a directory so a completed rename within it is durable. */
Status syncDirectory(const std::string &dir);

/**
 * Atomically move `from` onto `to` and fsync the destination
 * directory. `from` must already be durable (see syncStream).
 */
Status atomicPublishFile(const std::string &from, const std::string &to);

/**
 * True when `pid` names a live process (kill(pid, 0) semantics:
 * EPERM still counts as alive). Used to tell crashed owners' staging
 * files and lockfiles from ones belonging to concurrent runs.
 */
bool processAlive(pid_t pid);

} // namespace bpnsp

#endif // BPNSP_UTIL_FSUTIL_HPP
