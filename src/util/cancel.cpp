#include "util/cancel.hpp"

#include <thread>

namespace bpnsp {

namespace {

thread_local CancelToken *tCurrentToken = nullptr;

} // namespace

const char *
cancelCauseName(CancelCause cause)
{
    switch (cause) {
      case CancelCause::None:
        return "none";
      case CancelCause::User:
        return "user request";
      case CancelCause::Signal:
        return "signal";
      case CancelCause::Deadline:
        return "deadline";
      case CancelCause::Watchdog:
        return "watchdog";
    }
    return "unknown";
}

void
CancelToken::setDeadlineAfterMs(uint64_t ms)
{
    if (ms == 0) {
        deadlineNs.store(kNoDeadline, std::memory_order_relaxed);
        return;
    }
    setDeadline(std::chrono::steady_clock::now() +
                std::chrono::milliseconds(ms));
}

Status
CancelToken::check() const
{
    if (chain != nullptr) {
        const Status up = chain->check();
        if (!up.ok())
            return up;
    }
    const CancelCause why = cause();   // latches an expired deadline
    switch (why) {
      case CancelCause::None:
        return Status();
      case CancelCause::Deadline:
        return Status::deadlineExceeded("deadline expired");
      case CancelCause::Watchdog:
        return Status::deadlineExceeded(
            "watchdog detected stalled progress");
      default:
        return Status::cancelled(std::string("cancelled by ") +
                                 cancelCauseName(why));
    }
}

CancelToken &
globalCancelToken()
{
    static CancelToken token;
    return token;
}

CancelToken *
currentCancelToken()
{
    return tCurrentToken != nullptr ? tCurrentToken
                                    : &globalCancelToken();
}

CancelScope::CancelScope(CancelToken &token)
    : saved(tCurrentToken)
{
    tCurrentToken = &token;
}

CancelScope::~CancelScope()
{
    tCurrentToken = saved;
}

Status
cancellableSleepMs(uint64_t ms)
{
    CancelToken *token = currentCancelToken();
    const auto until = std::chrono::steady_clock::now() +
                       std::chrono::milliseconds(ms);
    while (std::chrono::steady_clock::now() < until) {
        const Status st = token->check();
        if (!st.ok())
            return st;
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    return token->check();
}

} // namespace bpnsp
