#include "util/histogram.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>

#include "util/logging.hpp"

namespace bpnsp {

Histogram::Histogram(std::vector<double> edges)
    : binEdges(std::move(edges))
{
    BPNSP_ASSERT(binEdges.size() >= 2, "need at least one bin");
    for (size_t i = 1; i < binEdges.size(); ++i)
        BPNSP_ASSERT(binEdges[i] > binEdges[i - 1], "edges must increase");
    counts.assign(binEdges.size() - 1, 0);
}

Histogram
Histogram::linear(double lo, double hi, double step)
{
    BPNSP_ASSERT(step > 0 && hi > lo);
    std::vector<double> edges;
    for (double e = lo; e < hi + step / 2; e += step)
        edges.push_back(e);
    return Histogram(std::move(edges));
}

void
Histogram::add(double value)
{
    add(value, 1);
}

void
Histogram::add(double value, uint64_t weight)
{
    if (value < binEdges.front()) {
        underflow += weight;
        return;
    }
    if (value > binEdges.back()) {
        overflow += weight;
        return;
    }
    // upper_bound returns the first edge strictly greater than value;
    // the bin index is one less than that edge's position.
    auto it = std::upper_bound(binEdges.begin(), binEdges.end(), value);
    size_t idx = static_cast<size_t>(it - binEdges.begin());
    if (idx == binEdges.size())   // value == last edge: closed last bin
        idx = binEdges.size() - 1;
    counts[idx - 1] += weight;
    inRange += weight;
}

double
Histogram::fraction(size_t i) const
{
    if (inRange == 0)
        return 0.0;
    return static_cast<double>(counts.at(i)) / static_cast<double>(inRange);
}

std::string
compactNumber(double v)
{
    char buf[32];
    const double a = std::fabs(v);
    if (a >= 1e6 && std::fmod(v, 1e6) == 0) {
        std::snprintf(buf, sizeof(buf), "%gM", v / 1e6);
    } else if (a >= 1e3 && std::fmod(v, 1e3) == 0) {
        std::snprintf(buf, sizeof(buf), "%gK", v / 1e3);
    } else {
        std::snprintf(buf, sizeof(buf), "%g", v);
    }
    return buf;
}

std::string
Histogram::binLabel(size_t i) const
{
    return compactNumber(binLo(i)) + "-" + compactNumber(binHi(i));
}

std::string
Histogram::render(unsigned bar_width) const
{
    uint64_t peak = 0;
    for (uint64_t c : counts)
        peak = std::max(peak, c);
    std::ostringstream oss;
    for (size_t i = 0; i < counts.size(); ++i) {
        const unsigned len = peak
            ? static_cast<unsigned>(static_cast<double>(counts[i]) /
                                    static_cast<double>(peak) * bar_width)
            : 0;
        char line[64];
        std::snprintf(line, sizeof(line), "%14s |", binLabel(i).c_str());
        oss << line << std::string(len, '#')
            << " " << counts[i]
            << " (" << static_cast<int>(fraction(i) * 1000) / 10.0 << "%)"
            << "\n";
    }
    return oss.str();
}

} // namespace bpnsp
