/**
 * @file
 * Saturating counters, the basic hysteresis element of branch predictors.
 */

#ifndef BPNSP_UTIL_SAT_COUNTER_HPP
#define BPNSP_UTIL_SAT_COUNTER_HPP

#include <cstdint>

#include "util/logging.hpp"

namespace bpnsp {

/**
 * Unsigned saturating counter of a configurable bit width.
 *
 * Counts in [0, 2^bits - 1]. The "taken" decision threshold is the
 * midpoint, i.e. the top half of the range predicts taken.
 */
class SatCounter
{
  public:
    /** Construct with the given width, initialized to initial. */
    explicit SatCounter(unsigned bits = 2, uint32_t initial = 0)
        : maxVal((1u << bits) - 1), value(initial)
    {
        BPNSP_ASSERT(bits >= 1 && bits <= 31);
        BPNSP_ASSERT(initial <= maxVal);
    }

    /** Increment, saturating at the maximum. */
    void
    increment()
    {
        if (value < maxVal)
            ++value;
    }

    /** Decrement, saturating at zero. */
    void
    decrement()
    {
        if (value > 0)
            --value;
    }

    /** Move toward taken (true) or not-taken (false). */
    void
    update(bool taken)
    {
        taken ? increment() : decrement();
    }

    /** Current raw value. */
    uint32_t read() const { return value; }

    /** Prediction: true when in the upper half of the range. */
    bool taken() const { return value > maxVal / 2; }

    /** True at either saturation rail (strong prediction). */
    bool saturated() const { return value == 0 || value == maxVal; }

    /** Maximum representable value. */
    uint32_t max() const { return maxVal; }

    /** Set the raw value (clamped). */
    void
    set(uint32_t v)
    {
        value = v > maxVal ? maxVal : v;
    }

  private:
    uint32_t maxVal;
    uint32_t value;
};

/**
 * Signed saturating counter in [-2^(bits-1), 2^(bits-1) - 1].
 *
 * This is the form used by TAGE table entries and statistical-corrector
 * weights: the sign carries the direction, the magnitude the confidence.
 */
class SignedSatCounter
{
  public:
    explicit SignedSatCounter(unsigned bits = 3, int32_t initial = 0)
        : minVal(-(1 << (bits - 1))), maxVal((1 << (bits - 1)) - 1),
          value(initial)
    {
        BPNSP_ASSERT(bits >= 1 && bits <= 31);
        BPNSP_ASSERT(initial >= minVal && initial <= maxVal);
    }

    /** Move toward taken (true) or not-taken (false), saturating. */
    void
    update(bool taken)
    {
        if (taken) {
            if (value < maxVal)
                ++value;
        } else {
            if (value > minVal)
                --value;
        }
    }

    /** Current raw value. */
    int32_t read() const { return value; }

    /** Prediction: taken iff nonnegative. */
    bool taken() const { return value >= 0; }

    /** True when the counter is weak (one of the two middle values). */
    bool weak() const { return value == 0 || value == -1; }

    /** True at either saturation rail. */
    bool saturated() const { return value == minVal || value == maxVal; }

    /** Absolute confidence magnitude, mapping weak values to 0. */
    uint32_t
    confidence() const
    {
        return value >= 0 ? static_cast<uint32_t>(value)
                          : static_cast<uint32_t>(-value - 1);
    }

    int32_t min() const { return minVal; }
    int32_t max() const { return maxVal; }

    /** Set the raw value (clamped to the legal range). */
    void
    set(int32_t v)
    {
        value = v < minVal ? minVal : (v > maxVal ? maxVal : v);
    }

  private:
    int32_t minVal;
    int32_t maxVal;
    int32_t value;
};

} // namespace bpnsp

#endif // BPNSP_UTIL_SAT_COUNTER_HPP
