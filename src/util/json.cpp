#include "util/json.hpp"

#include <cctype>
#include <cstdlib>

namespace bpnsp {

namespace {

const std::string kEmptyString;
const std::vector<JsonValue> kEmptyArray;
const std::map<std::string, JsonValue> kEmptyObject;
const JsonValue kNullValue;

} // namespace

bool
JsonValue::asBool(bool def) const
{
    return isBool() ? boolVal : def;
}

double
JsonValue::asDouble(double def) const
{
    return isNumber() ? numVal : def;
}

uint64_t
JsonValue::asUint(uint64_t def) const
{
    if (!isNumber() || numVal < 0)
        return def;
    return static_cast<uint64_t>(numVal);
}

const std::string &
JsonValue::asString() const
{
    return isString() ? strVal : kEmptyString;
}

const std::vector<JsonValue> &
JsonValue::items() const
{
    return isArray() ? arrVal : kEmptyArray;
}

const JsonValue &
JsonValue::get(const std::string &key) const
{
    if (isObject()) {
        const auto it = objVal.find(key);
        if (it != objVal.end())
            return it->second;
    }
    return kNullValue;
}

bool
JsonValue::has(const std::string &key) const
{
    return isObject() && objVal.count(key) != 0;
}

const std::map<std::string, JsonValue> &
JsonValue::members() const
{
    return isObject() ? objVal : kEmptyObject;
}

JsonValue
JsonValue::makeString(std::string s)
{
    JsonValue v;
    v.kindTag = Kind::String;
    v.strVal = std::move(s);
    return v;
}

JsonValue
JsonValue::makeNumber(double d)
{
    JsonValue v;
    v.kindTag = Kind::Number;
    v.numVal = d;
    return v;
}

JsonValue
JsonValue::makeBool(bool b)
{
    JsonValue v;
    v.kindTag = Kind::Bool;
    v.boolVal = b;
    return v;
}

/** Recursive-descent parser over the input buffer. */
class JsonParser
{
  public:
    explicit JsonParser(const std::string &text) : in(text) {}

    Status
    run(JsonValue *out)
    {
        Status st = parseValue(out, 0);
        if (!st.ok())
            return st;
        skipWs();
        if (pos != in.size())
            return error("trailing characters after document");
        return Status();
    }

  private:
    static constexpr int kMaxDepth = 64;

    const std::string &in;
    size_t pos = 0;

    Status
    error(const std::string &what) const
    {
        return Status::invalidArgument(
            "json: " + what + " at offset " + std::to_string(pos));
    }

    void
    skipWs()
    {
        while (pos < in.size() &&
               (in[pos] == ' ' || in[pos] == '\t' || in[pos] == '\n' ||
                in[pos] == '\r'))
            ++pos;
    }

    bool
    consume(char c)
    {
        if (pos < in.size() && in[pos] == c) {
            ++pos;
            return true;
        }
        return false;
    }

    bool
    consumeWord(const char *word)
    {
        const size_t len = std::string(word).size();
        if (in.compare(pos, len, word) == 0) {
            pos += len;
            return true;
        }
        return false;
    }

    Status
    parseValue(JsonValue *out, int depth)
    {
        if (depth > kMaxDepth)
            return error("nesting too deep");
        skipWs();
        if (pos >= in.size())
            return error("unexpected end of input");
        const char c = in[pos];
        switch (c) {
          case '{':
            return parseObject(out, depth);
          case '[':
            return parseArray(out, depth);
          case '"':
            out->kindTag = JsonValue::Kind::String;
            return parseString(&out->strVal);
          case 't':
            if (consumeWord("true")) {
                out->kindTag = JsonValue::Kind::Bool;
                out->boolVal = true;
                return Status();
            }
            return error("expected 'true'");
          case 'f':
            if (consumeWord("false")) {
                out->kindTag = JsonValue::Kind::Bool;
                out->boolVal = false;
                return Status();
            }
            return error("expected 'false'");
          case 'n':
            if (consumeWord("null")) {
                out->kindTag = JsonValue::Kind::Null;
                return Status();
            }
            return error("expected 'null'");
          default:
            return parseNumber(out);
        }
    }

    Status
    parseObject(JsonValue *out, int depth)
    {
        ++pos;   // '{'
        out->kindTag = JsonValue::Kind::Object;
        skipWs();
        if (consume('}'))
            return Status();
        while (true) {
            skipWs();
            if (pos >= in.size() || in[pos] != '"')
                return error("expected object key string");
            std::string key;
            if (Status st = parseString(&key); !st.ok())
                return st;
            skipWs();
            if (!consume(':'))
                return error("expected ':' after object key");
            JsonValue member;
            if (Status st = parseValue(&member, depth + 1); !st.ok())
                return st;
            out->objVal[key] = std::move(member);
            skipWs();
            if (consume(','))
                continue;
            if (consume('}'))
                return Status();
            return error("expected ',' or '}' in object");
        }
    }

    Status
    parseArray(JsonValue *out, int depth)
    {
        ++pos;   // '['
        out->kindTag = JsonValue::Kind::Array;
        skipWs();
        if (consume(']'))
            return Status();
        while (true) {
            JsonValue item;
            if (Status st = parseValue(&item, depth + 1); !st.ok())
                return st;
            out->arrVal.push_back(std::move(item));
            skipWs();
            if (consume(','))
                continue;
            if (consume(']'))
                return Status();
            return error("expected ',' or ']' in array");
        }
    }

    Status
    parseString(std::string *out)
    {
        ++pos;   // opening quote
        out->clear();
        while (pos < in.size()) {
            const char c = in[pos];
            if (c == '"') {
                ++pos;
                return Status();
            }
            if (static_cast<unsigned char>(c) < 0x20)
                return error("unescaped control character in string");
            if (c != '\\') {
                out->push_back(c);
                ++pos;
                continue;
            }
            ++pos;
            if (pos >= in.size())
                return error("dangling escape");
            const char esc = in[pos++];
            switch (esc) {
              case '"': out->push_back('"'); break;
              case '\\': out->push_back('\\'); break;
              case '/': out->push_back('/'); break;
              case 'b': out->push_back('\b'); break;
              case 'f': out->push_back('\f'); break;
              case 'n': out->push_back('\n'); break;
              case 'r': out->push_back('\r'); break;
              case 't': out->push_back('\t'); break;
              case 'u': {
                if (pos + 4 > in.size())
                    return error("truncated \\u escape");
                unsigned code = 0;
                for (int i = 0; i < 4; ++i) {
                    const char h = in[pos++];
                    code <<= 4;
                    if (h >= '0' && h <= '9')
                        code |= static_cast<unsigned>(h - '0');
                    else if (h >= 'a' && h <= 'f')
                        code |= static_cast<unsigned>(h - 'a' + 10);
                    else if (h >= 'A' && h <= 'F')
                        code |= static_cast<unsigned>(h - 'A' + 10);
                    else
                        return error("bad hex digit in \\u escape");
                }
                // UTF-8 encode the code point (BMP only; surrogate
                // pairs are not produced by any bpnsp writer).
                if (code < 0x80) {
                    out->push_back(static_cast<char>(code));
                } else if (code < 0x800) {
                    out->push_back(
                        static_cast<char>(0xc0 | (code >> 6)));
                    out->push_back(
                        static_cast<char>(0x80 | (code & 0x3f)));
                } else {
                    out->push_back(
                        static_cast<char>(0xe0 | (code >> 12)));
                    out->push_back(static_cast<char>(
                        0x80 | ((code >> 6) & 0x3f)));
                    out->push_back(
                        static_cast<char>(0x80 | (code & 0x3f)));
                }
                break;
              }
              default:
                return error("unknown escape character");
            }
        }
        return error("unterminated string");
    }

    Status
    parseNumber(JsonValue *out)
    {
        const size_t start = pos;
        if (pos < in.size() && in[pos] == '-')
            ++pos;
        while (pos < in.size() &&
               (std::isdigit(static_cast<unsigned char>(in[pos])) ||
                in[pos] == '.' || in[pos] == 'e' || in[pos] == 'E' ||
                in[pos] == '+' || in[pos] == '-'))
            ++pos;
        if (pos == start)
            return error("expected a value");
        const std::string token = in.substr(start, pos - start);
        char *end = nullptr;
        const double v = std::strtod(token.c_str(), &end);
        if (end != token.c_str() + token.size())
            return error("malformed number '" + token + "'");
        out->kindTag = JsonValue::Kind::Number;
        out->numVal = v;
        return Status();
    }
};

Status
JsonValue::parse(const std::string &text, JsonValue *out)
{
    *out = JsonValue();
    return JsonParser(text).run(out);
}

} // namespace bpnsp
