#include "util/options.hpp"

#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "util/logging.hpp"

namespace bpnsp {

OptionParser::OptionParser(std::string description)
    : desc(std::move(description))
{
    // Standard telemetry options, available in every binary. The
    // parser only records them; obs::configureFromOptions() (called by
    // each main after parse()) activates the report and heartbeat.
    addString("metrics-out", "",
              "write a JSON run report (metrics + run manifest) to "
              "this file on exit");
    addFlag("progress",
            "print an instr/sec heartbeat to stderr during trace "
            "delivery (silence with BPNSP_LOG_LEVEL=warn)");
    addString("faults", "",
              "deterministic fault-injection spec (also BPNSP_FAULTS), "
              "e.g. seed=7,tracestore.read.bitflip@0.01*2; see "
              "DESIGN.md \"Robustness\"");
    addString("trace-out", "",
              "record request/phase spans and write a Chrome "
              "trace-event JSON file (opens in ui.perfetto.dev) on "
              "exit");
    addInt("snapshot-ms", 0,
           "sample the metric registry every N ms into a bounded "
           "ring exported as the run report's \"snapshots\" "
           "time-series (0 = off)");
}

void
OptionParser::addInt(const std::string &name, int64_t def,
                     const std::string &help)
{
    options[name] = Option{Kind::Int, help, std::to_string(def)};
}

void
OptionParser::addDouble(const std::string &name, double def,
                        const std::string &help)
{
    std::ostringstream oss;
    oss << def;
    options[name] = Option{Kind::Double, help, oss.str()};
}

void
OptionParser::addString(const std::string &name, const std::string &def,
                        const std::string &help)
{
    options[name] = Option{Kind::String, help, def};
}

void
OptionParser::addFlag(const std::string &name, const std::string &help)
{
    options[name] = Option{Kind::Flag, help, "0"};
}

std::string
OptionParser::usage() const
{
    std::ostringstream oss;
    oss << desc << "\n\nOptions:\n";
    for (const auto &[name, opt] : options) {
        oss << "  --" << name;
        if (opt.kind != Kind::Flag)
            oss << "=<value>";
        oss << "\n      " << opt.help
            << " (default: " << opt.value << ")\n";
    }
    oss << "  --help\n      Show this message.\n";
    return oss.str();
}

void
OptionParser::parse(int argc, const char *const *argv)
{
    if (argc > 0)
        programName = argv[0];
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--help" || arg == "-h") {
            std::printf("%s\n", usage().c_str());
            std::exit(0);
        }
        if (arg.rfind("--", 0) != 0)
            fatal("unexpected positional argument: ", arg);
        arg = arg.substr(2);
        std::string name = arg;
        std::string value;
        bool have_value = false;
        const auto eq = arg.find('=');
        if (eq != std::string::npos) {
            name = arg.substr(0, eq);
            value = arg.substr(eq + 1);
            have_value = true;
        }
        auto it = options.find(name);
        if (it == options.end())
            fatal("unknown option --", name, "\n", usage());
        Option &opt = it->second;
        if (opt.kind == Kind::Flag) {
            if (have_value)
                fatal("flag --", name, " does not take a value");
            opt.value = "1";
            continue;
        }
        if (!have_value) {
            if (i + 1 >= argc)
                fatal("option --", name, " requires a value");
            value = argv[++i];
        }
        // Validate numeric forms eagerly for a clear error message.
        if (opt.kind == Kind::Int) {
            char *end = nullptr;
            std::strtoll(value.c_str(), &end, 10);
            if (end == value.c_str() || *end != '\0')
                fatal("option --", name, " expects an integer, got: ",
                      value);
        } else if (opt.kind == Kind::Double) {
            char *end = nullptr;
            std::strtod(value.c_str(), &end);
            if (end == value.c_str() || *end != '\0')
                fatal("option --", name, " expects a number, got: ",
                      value);
        }
        opt.value = value;
    }
}

const OptionParser::Option &
OptionParser::find(const std::string &name, Kind kind) const
{
    auto it = options.find(name);
    BPNSP_ASSERT(it != options.end(), "unregistered option: ", name);
    BPNSP_ASSERT(it->second.kind == kind, "option kind mismatch: ", name);
    return it->second;
}

int64_t
OptionParser::getInt(const std::string &name) const
{
    return std::strtoll(find(name, Kind::Int).value.c_str(), nullptr, 10);
}

double
OptionParser::getDouble(const std::string &name) const
{
    return std::strtod(find(name, Kind::Double).value.c_str(), nullptr);
}

const std::string &
OptionParser::getString(const std::string &name) const
{
    return find(name, Kind::String).value;
}

bool
OptionParser::getFlag(const std::string &name) const
{
    return find(name, Kind::Flag).value == "1";
}

double
experimentScale()
{
    const char *env = std::getenv("BPNSP_SCALE");
    if (env == nullptr || *env == '\0')
        return 1.0;
    char *end = nullptr;
    const double v = std::strtod(env, &end);
    if (end == env || v <= 0.0) {
        warn("ignoring invalid BPNSP_SCALE: ", env);
        return 1.0;
    }
    return v;
}

} // namespace bpnsp
