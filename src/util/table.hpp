/**
 * @file
 * Text table rendering for bench harness output. Every experiment binary
 * prints its results as tables shaped like the paper's tables/figures.
 */

#ifndef BPNSP_UTIL_TABLE_HPP
#define BPNSP_UTIL_TABLE_HPP

#include <cstdint>
#include <string>
#include <vector>

namespace bpnsp {

/** A simple column-aligned text table with an optional title. */
class TextTable
{
  public:
    explicit TextTable(std::string title = "") : tableTitle(std::move(title))
    {}

    /** Set the column headers (fixes the column count). */
    void setHeader(std::vector<std::string> names);

    /** Append a row; must match the header width if one was set. */
    void addRow(std::vector<std::string> cells);

    /** Begin a new row built cell-by-cell with cell(). */
    void beginRow();

    /** Append a string cell to the row started by beginRow(). */
    void cell(const std::string &s);

    /** Append a formatted double with the given precision. */
    void cell(double v, int precision = 3);

    /** Append an integer cell. */
    void cell(uint64_t v);
    void cell(int64_t v);
    void cell(int v) { cell(static_cast<int64_t>(v)); }

    /** Append a percentage cell, e.g. 0.553 -> "55.3%". */
    void percentCell(double fraction, int precision = 1);

    /** Render with box-drawing rules. */
    std::string render() const;

    /** Render as GitHub-flavored Markdown. */
    std::string renderMarkdown() const;

    /** Render as CSV (no title row). */
    std::string renderCsv() const;

    size_t numRows() const { return rows.size(); }
    size_t numCols() const;

    /** Access a cell for testing. */
    const std::string &at(size_t row, size_t col) const;

  private:
    std::string tableTitle;
    std::vector<std::string> header;
    std::vector<std::vector<std::string>> rows;
    std::vector<std::string> pending;
    bool rowOpen = false;

    void flushPending();
};

/** Format a double with fixed precision. */
std::string fmtDouble(double v, int precision = 3);

/** Format a fraction as a percentage string. */
std::string fmtPercent(double fraction, int precision = 1);

/** Format an integer with thousands separators, e.g. 13865 -> "13,865". */
std::string fmtGrouped(uint64_t v);

} // namespace bpnsp

#endif // BPNSP_UTIL_TABLE_HPP
