#include "util/logging.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace bpnsp {

namespace {

/** -1 until resolved; then a LogLevel value. */
std::atomic<int> gLogLevel{-1};

LogLevel
levelFromEnvironment()
{
    const char *env = std::getenv("BPNSP_LOG_LEVEL");
    if (env == nullptr || *env == '\0')
        return LogLevel::Info;
    if (std::strcmp(env, "quiet") == 0)
        return LogLevel::Quiet;
    if (std::strcmp(env, "warn") == 0)
        return LogLevel::Warn;
    if (std::strcmp(env, "info") == 0)
        return LogLevel::Info;
    std::fprintf(stderr,
                 "warn: ignoring invalid BPNSP_LOG_LEVEL '%s' "
                 "(want quiet|warn|info)\n",
                 env);
    return LogLevel::Info;
}

} // namespace

LogLevel
logLevel()
{
    int v = gLogLevel.load(std::memory_order_relaxed);
    if (v < 0) {
        v = static_cast<int>(levelFromEnvironment());
        gLogLevel.store(v, std::memory_order_relaxed);
    }
    return static_cast<LogLevel>(v);
}

void
setLogLevel(LogLevel level)
{
    gLogLevel.store(static_cast<int>(level), std::memory_order_relaxed);
}

namespace detail {

void
fatalImpl(const std::string &msg)
{
    std::fprintf(stderr, "fatal: %s\n", msg.c_str());
    std::exit(1);
}

void
panicImpl(const std::string &msg)
{
    std::fprintf(stderr, "panic: %s\n", msg.c_str());
    std::abort();
}

void
warnImpl(const std::string &msg)
{
    if (logLevel() >= LogLevel::Warn)
        std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

void
informImpl(const std::string &msg)
{
    if (logLevel() >= LogLevel::Info)
        std::fprintf(stderr, "info: %s\n", msg.c_str());
}

} // namespace detail
} // namespace bpnsp
