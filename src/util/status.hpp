/**
 * @file
 * Recoverable-error taxonomy for the storage and replay layers.
 *
 * fatal()/panic() (util/logging.hpp) remain the right tools for user
 * errors and internal invariant violations; Status is for conditions a
 * caller can reasonably recover from — a corrupt cache entry that can
 * be regenerated, a lock held by a concurrent run, an injected I/O
 * fault. Carrying the category in-band (instead of a bare diagnostic
 * string) lets callers branch on *what went wrong*: CorruptData
 * quarantines and regenerates, Busy degrades to an uncached run,
 * IoError retries with backoff.
 *
 * The taxonomy is deliberately small:
 *  - IoError      — the OS refused or truncated an I/O operation
 *                   (ENOSPC, EIO, missing file, failed rename).
 *  - CorruptData  — bytes were read but fail validation (bad magic,
 *                   checksum mismatch, index inconsistency).
 *  - Busy         — a concurrent holder owns the resource (generation
 *                   lockfile); retry later or degrade.
 *  - Cancelled    — the operation was abandoned mid-flight (injected
 *                   crash, writer already failed, cooperative
 *                   cancellation via util/cancel.hpp).
 *  - DeadlineExceeded — a deadline or wall budget expired before the
 *                   operation finished (per-cell --deadline-ms, shard
 *                   watchdog stall detection).
 *  - InvalidArgument — the caller asked for something impossible
 *                   (range past end of store, malformed fault spec).
 *  - Unavailable  — the serving endpoint for this request is down
 *                   right now (crashed worker being respawned, shard
 *                   degraded by the crash-loop breaker); retry after
 *                   a backoff, the condition is expected to clear.
 */

#ifndef BPNSP_UTIL_STATUS_HPP
#define BPNSP_UTIL_STATUS_HPP

#include <cstdint>
#include <string>
#include <utility>

namespace bpnsp {

/** What category of failure a non-ok Status reports. */
enum class StatusCode : uint8_t
{
    Ok = 0,
    IoError,
    CorruptData,
    Busy,
    Cancelled,
    DeadlineExceeded,
    InvalidArgument,
    Unavailable,
};

/** Stable human-readable name of a code ("CorruptData", ...). */
const char *statusCodeName(StatusCode code);

/**
 * A status code plus diagnostic message. Default-constructed Status is
 * Ok; factory functions build the failure categories. Cheap to copy
 * when ok (empty message).
 */
class Status
{
  public:
    Status() = default;

    static Status
    make(StatusCode code, std::string message)
    {
        Status s;
        s.c = code;
        s.msg = std::move(message);
        return s;
    }

    /** @name Factories, one per failure category. */
    /// @{
    static Status
    ioError(std::string message)
    {
        return make(StatusCode::IoError, std::move(message));
    }

    static Status
    corruptData(std::string message)
    {
        return make(StatusCode::CorruptData, std::move(message));
    }

    static Status
    busy(std::string message)
    {
        return make(StatusCode::Busy, std::move(message));
    }

    static Status
    cancelled(std::string message)
    {
        return make(StatusCode::Cancelled, std::move(message));
    }

    static Status
    deadlineExceeded(std::string message)
    {
        return make(StatusCode::DeadlineExceeded, std::move(message));
    }

    static Status
    invalidArgument(std::string message)
    {
        return make(StatusCode::InvalidArgument, std::move(message));
    }

    static Status
    unavailable(std::string message)
    {
        return make(StatusCode::Unavailable, std::move(message));
    }
    /// @}

    bool ok() const { return c == StatusCode::Ok; }
    StatusCode code() const { return c; }
    const std::string &message() const { return msg; }

    /** "CorruptData: payload checksum mismatch ..." ("ok" when ok). */
    std::string str() const;

    /**
     * Keep the first failure: adopt `other` only when this Status is
     * still ok. Lets sequential pipelines accumulate into one Status
     * without clobbering the root cause.
     */
    void
    update(const Status &other)
    {
        if (ok() && !other.ok())
            *this = other;
    }

  private:
    StatusCode c = StatusCode::Ok;
    std::string msg;
};

} // namespace bpnsp

#endif // BPNSP_UTIL_STATUS_HPP
