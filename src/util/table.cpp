#include "util/table.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "util/logging.hpp"

namespace bpnsp {

std::string
fmtDouble(double v, int precision)
{
    char buf[48];
    std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
    return buf;
}

std::string
fmtPercent(double fraction, int precision)
{
    char buf[48];
    std::snprintf(buf, sizeof(buf), "%.*f%%", precision, fraction * 100.0);
    return buf;
}

std::string
fmtGrouped(uint64_t v)
{
    std::string digits = std::to_string(v);
    std::string out;
    int from_end = 0;
    for (auto it = digits.rbegin(); it != digits.rend(); ++it, ++from_end) {
        if (from_end > 0 && from_end % 3 == 0)
            out.push_back(',');
        out.push_back(*it);
    }
    std::reverse(out.begin(), out.end());
    return out;
}

void
TextTable::setHeader(std::vector<std::string> names)
{
    BPNSP_ASSERT(rows.empty(), "header must be set before rows");
    header = std::move(names);
}

void
TextTable::addRow(std::vector<std::string> cells)
{
    if (!header.empty())
        BPNSP_ASSERT(cells.size() == header.size(), "row width mismatch");
    rows.push_back(std::move(cells));
}

void
TextTable::beginRow()
{
    flushPending();
    rowOpen = true;
}

void
TextTable::flushPending()
{
    if (rowOpen) {
        addRow(std::move(pending));
        pending.clear();
        rowOpen = false;
    }
}

void
TextTable::cell(const std::string &s)
{
    BPNSP_ASSERT(rowOpen, "cell() outside beginRow()");
    pending.push_back(s);
}

void
TextTable::cell(double v, int precision)
{
    cell(fmtDouble(v, precision));
}

void
TextTable::cell(uint64_t v)
{
    cell(std::to_string(v));
}

void
TextTable::cell(int64_t v)
{
    cell(std::to_string(v));
}

void
TextTable::percentCell(double fraction, int precision)
{
    cell(fmtPercent(fraction, precision));
}

size_t
TextTable::numCols() const
{
    if (!header.empty())
        return header.size();
    return rows.empty() ? 0 : rows.front().size();
}

const std::string &
TextTable::at(size_t row, size_t col) const
{
    return rows.at(row).at(col);
}

std::string
TextTable::render() const
{
    // A const view of the table including any still-pending row.
    std::vector<std::vector<std::string>> all = rows;
    if (rowOpen)
        all.push_back(pending);

    size_t cols = header.size();
    for (const auto &r : all)
        cols = std::max(cols, r.size());
    std::vector<size_t> width(cols, 0);
    for (size_t c = 0; c < header.size(); ++c)
        width[c] = header[c].size();
    for (const auto &r : all)
        for (size_t c = 0; c < r.size(); ++c)
            width[c] = std::max(width[c], r[c].size());

    auto renderRow = [&](const std::vector<std::string> &r) {
        std::ostringstream line;
        for (size_t c = 0; c < cols; ++c) {
            const std::string &s = c < r.size() ? r[c] : std::string();
            line << "| " << s << std::string(width[c] - s.size() + 1, ' ');
        }
        line << "|\n";
        return line.str();
    };
    auto rule = [&]() {
        std::ostringstream line;
        for (size_t c = 0; c < cols; ++c)
            line << "+" << std::string(width[c] + 2, '-');
        line << "+\n";
        return line.str();
    };

    std::ostringstream oss;
    if (!tableTitle.empty())
        oss << tableTitle << "\n";
    oss << rule();
    if (!header.empty()) {
        oss << renderRow(header);
        oss << rule();
    }
    for (const auto &r : all)
        oss << renderRow(r);
    oss << rule();
    return oss.str();
}

std::string
TextTable::renderMarkdown() const
{
    std::vector<std::vector<std::string>> all = rows;
    if (rowOpen)
        all.push_back(pending);

    std::ostringstream oss;
    if (!tableTitle.empty())
        oss << "### " << tableTitle << "\n\n";
    auto emit = [&](const std::vector<std::string> &r) {
        oss << "|";
        for (const auto &cell_text : r)
            oss << " " << cell_text << " |";
        oss << "\n";
    };
    if (!header.empty()) {
        emit(header);
        oss << "|";
        for (size_t c = 0; c < header.size(); ++c)
            oss << "---|";
        oss << "\n";
    }
    for (const auto &r : all)
        emit(r);
    return oss.str();
}

std::string
TextTable::renderCsv() const
{
    std::vector<std::vector<std::string>> all = rows;
    if (rowOpen)
        all.push_back(pending);

    std::ostringstream oss;
    auto emit = [&](const std::vector<std::string> &r) {
        for (size_t c = 0; c < r.size(); ++c) {
            if (c)
                oss << ",";
            // Quote cells containing commas or quotes.
            if (r[c].find_first_of(",\"\n") != std::string::npos) {
                oss << '"';
                for (char ch : r[c]) {
                    if (ch == '"')
                        oss << '"';
                    oss << ch;
                }
                oss << '"';
            } else {
                oss << r[c];
            }
        }
        oss << "\n";
    };
    if (!header.empty())
        emit(header);
    for (const auto &r : all)
        emit(r);
    return oss.str();
}

} // namespace bpnsp
