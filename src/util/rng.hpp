/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * All stochastic behavior in the repository (workload synthesis, data
 * tables, clustering initialization) flows through Rng so that every
 * experiment is reproducible from a single seed. The generator is
 * xoshiro256**, which is fast, high quality, and trivially seedable.
 */

#ifndef BPNSP_UTIL_RNG_HPP
#define BPNSP_UTIL_RNG_HPP

#include <cstdint>

namespace bpnsp {

/** xoshiro256** PRNG with splitmix64 seeding. */
class Rng
{
  public:
    /** Construct from a 64-bit seed; equal seeds give equal streams. */
    explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ull)
    {
        // splitmix64 expansion of the seed into the four state words.
        uint64_t z = seed;
        for (auto &word : state) {
            z += 0x9e3779b97f4a7c15ull;
            uint64_t s = z;
            s = (s ^ (s >> 30)) * 0xbf58476d1ce4e5b9ull;
            s = (s ^ (s >> 27)) * 0x94d049bb133111ebull;
            word = s ^ (s >> 31);
        }
    }

    /** Next raw 64-bit value. */
    uint64_t
    next()
    {
        const uint64_t result = rotl(state[1] * 5, 7) * 9;
        const uint64_t t = state[1] << 17;
        state[2] ^= state[0];
        state[3] ^= state[1];
        state[1] ^= state[2];
        state[0] ^= state[3];
        state[2] ^= t;
        state[3] = rotl(state[3], 45);
        return result;
    }

    /** Uniform integer in [0, bound). bound must be nonzero. */
    uint64_t
    below(uint64_t bound)
    {
        // Rejection-free Lemire reduction is overkill here; modulo bias
        // is negligible for the bounds we use (all << 2^64).
        return next() % bound;
    }

    /** Uniform integer in [lo, hi] inclusive. */
    int64_t
    range(int64_t lo, int64_t hi)
    {
        return lo + static_cast<int64_t>(below(
            static_cast<uint64_t>(hi - lo + 1)));
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /** Bernoulli draw with probability p of true. */
    bool
    chance(double p)
    {
        return uniform() < p;
    }

    /** Fork an independent, deterministic child stream. */
    Rng
    fork()
    {
        return Rng(next() ^ 0xd1b54a32d192ed03ull);
    }

  private:
    static uint64_t
    rotl(uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    uint64_t state[4];
};

} // namespace bpnsp

#endif // BPNSP_UTIL_RNG_HPP
