/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * All stochastic behavior in the repository (workload synthesis, fault
 * injection, load generation, data tables, clustering initialization)
 * flows through Rng so that every experiment is reproducible from a
 * single seed. The generator is xoshiro256**, which is fast, high
 * quality, and trivially seedable; seeds expand through splitmix64.
 *
 * Subsystems that need many decorrelated streams from one master seed
 * (faultsim's per-failpoint streams, the serve load generator's
 * per-client streams, synth's per-program streams) derive them through
 * Rng::stream() rather than ad-hoc seed arithmetic, so the whole
 * repository draws from one audited derivation scheme: the master seed
 * and the stream label (a name or an index) are mixed through
 * splitmix64/FNV-1a before seeding the child generator, which keeps
 * nearby seeds and nearby indices statistically independent.
 */

#ifndef BPNSP_UTIL_RNG_HPP
#define BPNSP_UTIL_RNG_HPP

#include <cstdint>
#include <string_view>

namespace bpnsp {

/** One splitmix64 mixing step (also usable as a 64-bit hash finisher). */
inline uint64_t
splitmix64(uint64_t x)
{
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

/** FNV-1a over a byte string, for deriving streams from names. */
inline uint64_t
fnv1a64(std::string_view bytes)
{
    uint64_t hash = 0xcbf29ce484222325ull;
    for (const char c : bytes) {
        hash ^= static_cast<unsigned char>(c);
        hash *= 0x100000001b3ull;
    }
    return hash;
}

/** xoshiro256** PRNG with splitmix64 seeding. */
class Rng
{
  public:
    /** Construct from a 64-bit seed; equal seeds give equal streams. */
    explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ull)
    {
        // splitmix64 expansion of the seed into the four state words.
        uint64_t z = seed;
        for (auto &word : state) {
            z += 0x9e3779b97f4a7c15ull;
            uint64_t s = z;
            s = (s ^ (s >> 30)) * 0xbf58476d1ce4e5b9ull;
            s = (s ^ (s >> 27)) * 0x94d049bb133111ebull;
            word = s ^ (s >> 31);
        }
    }

    /** Next raw 64-bit value. */
    uint64_t
    next()
    {
        const uint64_t result = rotl(state[1] * 5, 7) * 9;
        const uint64_t t = state[1] << 17;
        state[2] ^= state[0];
        state[3] ^= state[1];
        state[1] ^= state[2];
        state[0] ^= state[3];
        state[2] ^= t;
        state[3] = rotl(state[3], 45);
        return result;
    }

    /** Uniform integer in [0, bound). bound must be nonzero. */
    uint64_t
    below(uint64_t bound)
    {
        // Rejection-free Lemire reduction is overkill here; modulo bias
        // is negligible for the bounds we use (all << 2^64).
        return next() % bound;
    }

    /** Uniform integer in [lo, hi] inclusive. */
    int64_t
    range(int64_t lo, int64_t hi)
    {
        return lo + static_cast<int64_t>(below(
            static_cast<uint64_t>(hi - lo + 1)));
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /** Bernoulli draw with probability p of true. */
    bool
    chance(double p)
    {
        return uniform() < p;
    }

    /** Fork an independent, deterministic child stream. */
    Rng
    fork()
    {
        return Rng(next() ^ 0xd1b54a32d192ed03ull);
    }

    /**
     * Derive the numbered substream of a master seed. Equal
     * (seed, index) pairs give equal streams; distinct indices give
     * statistically independent ones even when consecutive.
     */
    static Rng
    stream(uint64_t seed, uint64_t index)
    {
        return Rng(splitmix64(seed) ^ splitmix64(index ^
                                                 0xa0761d6478bd642full));
    }

    /**
     * Derive the named substream of a master seed. The per-failpoint
     * and per-phase streams use this so a given (seed, name) pair
     * reproduces the same draws regardless of how other streams
     * interleave.
     */
    static Rng
    stream(uint64_t seed, std::string_view name)
    {
        return Rng(splitmix64(seed) ^ fnv1a64(name));
    }

  private:
    static uint64_t
    rotl(uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    uint64_t state[4];
};

} // namespace bpnsp

#endif // BPNSP_UTIL_RNG_HPP
