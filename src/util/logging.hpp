/**
 * @file
 * Status and error reporting helpers, in the spirit of gem5's logging.hh.
 *
 * fatal() is for user errors (bad configuration, invalid arguments) and
 * exits with status 1. panic() is for internal invariant violations and
 * aborts. warn()/inform() report conditions without stopping.
 *
 * warn() and inform() respect a verbosity level, read once from the
 * BPNSP_LOG_LEVEL environment variable ("quiet" silences both, "warn"
 * silences inform() only, "info" — the default — prints both), so CI
 * logs can drop the progress heartbeat and cache chatter without
 * touching per-binary flags. fatal()/panic() always print.
 */

#ifndef BPNSP_UTIL_LOGGING_HPP
#define BPNSP_UTIL_LOGGING_HPP

#include <sstream>
#include <string>

namespace bpnsp {

/** Verbosity of warn()/inform(); higher prints more. */
enum class LogLevel { Quiet = 0, Warn = 1, Info = 2 };

/**
 * The effective log level: the last setLogLevel() value, else
 * BPNSP_LOG_LEVEL (quiet|warn|info), else Info.
 */
LogLevel logLevel();

/** Override the log level (takes precedence over the environment). */
void setLogLevel(LogLevel level);

namespace detail {

/** Terminate with exit(1) after printing a "fatal:" message. */
[[noreturn]] void fatalImpl(const std::string &msg);

/** Terminate with abort() after printing a "panic:" message. */
[[noreturn]] void panicImpl(const std::string &msg);

/** Print a "warn:" message to stderr. */
void warnImpl(const std::string &msg);

/** Print an "info:" message to stderr. */
void informImpl(const std::string &msg);

/** Concatenate a parameter pack into one string via ostringstream. */
template <typename... Args>
std::string
concat(Args &&...args)
{
    std::ostringstream oss;
    (oss << ... << std::forward<Args>(args));
    return oss.str();
}

} // namespace detail

/** Report an unrecoverable user-level error and exit(1). */
template <typename... Args>
[[noreturn]] void
fatal(Args &&...args)
{
    detail::fatalImpl(detail::concat(std::forward<Args>(args)...));
}

/** Report an internal invariant violation and abort(). */
template <typename... Args>
[[noreturn]] void
panic(Args &&...args)
{
    detail::panicImpl(detail::concat(std::forward<Args>(args)...));
}

/** Report a suspicious-but-survivable condition. */
template <typename... Args>
void
warn(Args &&...args)
{
    detail::warnImpl(detail::concat(std::forward<Args>(args)...));
}

/** Report normal operating status. */
template <typename... Args>
void
inform(Args &&...args)
{
    detail::informImpl(detail::concat(std::forward<Args>(args)...));
}

/** panic() unless the given condition holds. */
#define BPNSP_ASSERT(cond, ...)                                            \
    do {                                                                   \
        if (!(cond)) {                                                     \
            ::bpnsp::panic("assertion failed: ", #cond, " ", __FILE__,     \
                           ":", __LINE__, " ", ##__VA_ARGS__);             \
        }                                                                  \
    } while (0)

} // namespace bpnsp

#endif // BPNSP_UTIL_LOGGING_HPP
