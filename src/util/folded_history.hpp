/**
 * @file
 * Folded (compressed) history registers, as used by TAGE-family
 * predictors to hash very long global histories into table indices and
 * tags incrementally, one branch at a time.
 */

#ifndef BPNSP_UTIL_FOLDED_HISTORY_HPP
#define BPNSP_UTIL_FOLDED_HISTORY_HPP

#include <cstdint>
#include <vector>

#include "util/logging.hpp"

namespace bpnsp {

/**
 * A large shift register of branch outcomes (the raw global history).
 *
 * Stores up to capacity bits; bit 0 is the most recent outcome.
 */
class HistoryRegister
{
  public:
    explicit HistoryRegister(unsigned capacity = 4096)
        : cap(capacity), bitvec((capacity + 63) / 64, 0)
    {
        BPNSP_ASSERT(capacity >= 1);
    }

    /** Shift in a new outcome as the most recent bit. */
    void
    push(bool taken)
    {
        // Shift the whole vector left by one bit, inserting at bit 0.
        bool carry = taken;
        for (auto &word : bitvec) {
            bool next_carry = (word >> 63) & 1;
            word = (word << 1) | (carry ? 1u : 0u);
            carry = next_carry;
        }
    }

    /** Outcome of the branch `pos` steps in the past (0 = most recent). */
    bool
    at(unsigned pos) const
    {
        BPNSP_ASSERT(pos < cap);
        return (bitvec[pos / 64] >> (pos % 64)) & 1;
    }

    /** The `n` most recent outcomes packed into the low bits (n <= 64). */
    uint64_t
    low(unsigned n) const
    {
        BPNSP_ASSERT(n <= 64);
        uint64_t v = bitvec[0];
        if (n < 64)
            v &= (1ull << n) - 1;
        return v;
    }

    unsigned capacity() const { return cap; }

    /** Clear all history. */
    void
    reset()
    {
        for (auto &word : bitvec)
            word = 0;
    }

  private:
    unsigned cap;
    std::vector<uint64_t> bitvec;
};

/**
 * Incrementally-maintained XOR fold of the most recent historyLength
 * bits of a HistoryRegister down to targetWidth bits.
 *
 * Equivalent to foldTo(low historyLength bits, targetWidth) but updated
 * in O(1) per branch: new bits rotate in at the bottom, expired bits
 * rotate out at position historyLength % targetWidth.
 */
class FoldedHistory
{
  public:
    FoldedHistory(unsigned history_length, unsigned target_width)
        : histLen(history_length), width(target_width), folded(0)
    {
        BPNSP_ASSERT(width >= 1 && width < 32);
        outPoint = histLen % width;
    }

    /**
     * Update after the global history consumed a new outcome.
     *
     * @param new_bit the outcome just shifted into the history
     * @param expired_bit the outcome that just moved past histLen
     */
    void
    update(bool new_bit, bool expired_bit)
    {
        folded = (folded << 1) | (new_bit ? 1u : 0u);
        folded ^= (expired_bit ? 1u : 0u) << outPoint;
        folded ^= folded >> width;
        folded &= (1u << width) - 1;
    }

    /** Current folded value (targetWidth bits). */
    uint32_t value() const { return folded; }

    unsigned historyLength() const { return histLen; }
    unsigned targetWidth() const { return width; }

    /** Clear to zero (matches a cleared history register). */
    void reset() { folded = 0; }

  private:
    unsigned histLen;
    unsigned width;
    unsigned outPoint;
    uint32_t folded;
};

} // namespace bpnsp

#endif // BPNSP_UTIL_FOLDED_HISTORY_HPP
