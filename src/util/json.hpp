/**
 * @file
 * Minimal JSON document model and recursive-descent parser.
 *
 * The repository renders all of its JSON by hand (run reports, campaign
 * results) but until now never had to *read* any back. The synth
 * subsystem does: fitted workload profiles are versioned JSON documents
 * that `bpnsp_synth generate` and the synth workload resolver load from
 * disk. This parser covers the full JSON grammar (objects, arrays,
 * strings with escapes, numbers, booleans, null) with strict error
 * reporting and no dependencies, and is small enough to audit.
 *
 * Numbers are held as doubles; integral values up to 2^53 round-trip
 * exactly, which covers every counter and histogram edge the profiles
 * carry.
 */

#ifndef BPNSP_UTIL_JSON_HPP
#define BPNSP_UTIL_JSON_HPP

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "util/status.hpp"

namespace bpnsp {

/** One JSON value (object, array, string, number, bool, or null). */
class JsonValue
{
  public:
    enum class Kind { Null, Bool, Number, String, Array, Object };

    JsonValue() = default;

    Kind kind() const { return kindTag; }
    bool isNull() const { return kindTag == Kind::Null; }
    bool isBool() const { return kindTag == Kind::Bool; }
    bool isNumber() const { return kindTag == Kind::Number; }
    bool isString() const { return kindTag == Kind::String; }
    bool isArray() const { return kindTag == Kind::Array; }
    bool isObject() const { return kindTag == Kind::Object; }

    /** Value accessors; fatal-free, return the default on kind mismatch. */
    bool asBool(bool def = false) const;
    double asDouble(double def = 0.0) const;
    uint64_t asUint(uint64_t def = 0) const;
    const std::string &asString() const;   ///< "" on mismatch

    /** Array access ([] of a non-array is empty). */
    const std::vector<JsonValue> &items() const;

    /** Object member lookup; null-kind sentinel when absent. */
    const JsonValue &get(const std::string &key) const;
    bool has(const std::string &key) const;

    /** Object members in key order (objects only). */
    const std::map<std::string, JsonValue> &members() const;

    /** @name Construction helpers (for tests) */
    /// @{
    static JsonValue makeString(std::string s);
    static JsonValue makeNumber(double v);
    static JsonValue makeBool(bool v);
    /// @}

    /**
     * Parse a complete JSON document. On grammar violations returns
     * InvalidArgument naming the byte offset and what was expected;
     * trailing non-whitespace after the document is an error too.
     */
    static Status parse(const std::string &text, JsonValue *out);

  private:
    Kind kindTag = Kind::Null;
    bool boolVal = false;
    double numVal = 0.0;
    std::string strVal;
    std::vector<JsonValue> arrVal;
    std::map<std::string, JsonValue> objVal;

    friend class JsonParser;
};

} // namespace bpnsp

#endif // BPNSP_UTIL_JSON_HPP
