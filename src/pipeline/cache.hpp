/**
 * @file
 * Set-associative cache model with LRU replacement, composed into the
 * L1I/L1D/L2/LLC hierarchy of the Skylake-like core configuration.
 * Timing-only: the model returns access latencies and tracks hit/miss
 * counters; no data is stored.
 */

#ifndef BPNSP_PIPELINE_CACHE_HPP
#define BPNSP_PIPELINE_CACHE_HPP

#include <cstdint>
#include <string>
#include <vector>

namespace bpnsp {

/** One level of a timing-only cache hierarchy. */
class Cache
{
  public:
    /**
     * @param cache_name reporting name
     * @param size_bytes total capacity
     * @param associativity ways per set
     * @param line_bytes cache line size
     * @param hit_latency cycles on a hit at this level
     * @param next lower level (nullptr = memory is next)
     * @param memory_latency cycles to memory when next == nullptr
     */
    Cache(std::string cache_name, uint64_t size_bytes,
          unsigned associativity, unsigned line_bytes,
          unsigned hit_latency, Cache *next_level,
          unsigned memory_latency = 0);

    /**
     * Access the line containing addr, filling on miss.
     * @return total latency in cycles including lower levels.
     */
    unsigned access(uint64_t addr);

    /** True if the line containing addr is resident (no side effects). */
    bool probe(uint64_t addr) const;

    uint64_t hits() const { return hitCount; }
    uint64_t misses() const { return missCount; }

    /** Miss ratio (0 when never accessed). */
    double
    missRatio() const
    {
        const uint64_t total = hitCount + missCount;
        return total ? static_cast<double>(missCount) / total : 0.0;
    }

    const std::string &name() const { return cacheName; }
    unsigned hitLatency() const { return latency; }

    /** Invalidate all lines and zero the counters. */
    void reset();

  private:
    struct Way
    {
        uint64_t tag = 0;
        uint64_t lastUse = 0;
        bool valid = false;
    };

    std::string cacheName;
    unsigned assoc;
    unsigned lineShift;
    uint64_t numSets;
    unsigned latency;
    Cache *next;
    unsigned memLatency;
    std::vector<Way> ways;   // numSets * assoc, row-major by set
    uint64_t useClock = 0;
    uint64_t hitCount = 0;
    uint64_t missCount = 0;

    uint64_t setOf(uint64_t addr) const;
    uint64_t tagOf(uint64_t addr) const;
};

/** The full hierarchy used by the core model. */
struct CacheHierarchy
{
    Cache llc;
    Cache l2;
    Cache l1i;
    Cache l1d;

    /** Skylake-like sizes: 32K/32K L1, 256K L2, 2M LLC. */
    CacheHierarchy();

    /** Invalidate everything. */
    void reset();
};

} // namespace bpnsp

#endif // BPNSP_PIPELINE_CACHE_HPP
