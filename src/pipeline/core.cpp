#include "pipeline/core.hpp"

#include <algorithm>

namespace bpnsp {

CoreModel::CoreModel(const CoreConfig &config,
                     const PredictorSim &bp_outcomes,
                     const FrontendModel *frontend)
    : cfg(config), bp(bp_outcomes), fe(frontend),
      fetchSlots(config.fetchWidth),
      issueSlots(config.issueWidth), retireSlots(config.retireWidth),
      robRing(config.robSize, 0), schedRing(config.schedSize, 0),
      lqRing(config.lqSize, 0), sqRing(config.sqSize, 0)
{
}

unsigned
CoreModel::execLatency(const TraceRecord &rec)
{
    switch (rec.cls) {
      case InstrClass::Mul:
        return cfg.mulLatency;
      case InstrClass::Div:
        return cfg.divLatency;
      case InstrClass::Load:
        return hierarchy.l1d.access(rec.memAddr);
      case InstrClass::Store:
        return cfg.storeLatency;
      default:
        return cfg.aluLatency;
    }
}

void
CoreModel::onRecord(const TraceRecord &rec)
{
    // ---- Front end ----
    // The fetch of this instruction cannot begin before the front end
    // recovered from the last misprediction, and cannot dispatch while
    // the ROB slot it needs is still occupied.
    uint64_t fetch_bound =
        std::max(fetchResume, robRing[index % cfg.robSize]);

    // I-cache: pay the miss latency when crossing into a new line that
    // misses; sequential fetches within a line are free.
    const uint64_t line = rec.ip >> 6;
    unsigned icache_extra = 0;
    if (line != lastFetchLine) {
        const unsigned lat = hierarchy.l1i.access(rec.ip);
        icache_extra = lat;   // L1I hit latency is folded into depth
        lastFetchLine = line;
    }
    // Frontend stalls (BTB-miss bubbles the FTQ could not absorb)
    // delay fetch just like an I-cache miss does.
    unsigned frontend_extra = 0;
    if (fe != nullptr) {
        frontend_extra = static_cast<unsigned>(fe->lastStallCycles());
        stats.ftqStallCycles += frontend_extra;
    }
    const uint64_t fetch_cycle =
        fetchSlots.alloc(fetch_bound) + icache_extra + frontend_extra;

    // ---- Dispatch / schedule ----
    const uint64_t dispatch_ready = fetch_cycle + cfg.frontendDepth;
    uint64_t issue_bound =
        std::max(dispatch_ready, schedRing[index % cfg.schedSize]);

    // Load/store queue occupancy.
    if (rec.cls == InstrClass::Load) {
        issue_bound =
            std::max(issue_bound, lqRing[loadIndex % cfg.lqSize]);
    } else if (rec.cls == InstrClass::Store) {
        issue_bound =
            std::max(issue_bound, sqRing[storeIndex % cfg.sqSize]);
    }

    // Register dependencies.
    for (unsigned s = 0; s < rec.numSrc; ++s)
        issue_bound = std::max(issue_bound, regReady[rec.src[s]]);

    // Issue is out of order: the window floor rides the in-order
    // fetch stream (nothing can issue before it was fetched).
    issueSlots.advanceFloor(fetch_cycle);
    const uint64_t issue_cycle = issueSlots.alloc(issue_bound);
    schedRing[index % cfg.schedSize] = issue_cycle;

    // ---- Execute ----
    const uint64_t complete_cycle = issue_cycle + execLatency(rec);
    if (rec.hasDst)
        regReady[rec.dst] = complete_cycle;

    // ---- Retire (in order) ----
    const uint64_t retire_cycle =
        retireSlots.alloc(std::max(complete_cycle, lastRetire));
    lastRetire = retire_cycle;
    robRing[index % cfg.robSize] = retire_cycle;
    if (rec.cls == InstrClass::Load)
        lqRing[loadIndex++ % cfg.lqSize] = retire_cycle;
    else if (rec.cls == InstrClass::Store)
        sqRing[storeIndex++ % cfg.sqSize] = retire_cycle;

    // ---- Branch handling ----
    // Any taken control transfer ends the fetch group: the front end
    // redirects at most once per cycle, which is what ultimately
    // bounds IPC on branchy code even under perfect prediction.
    if (isControl(rec.cls) && rec.taken)
        fetchSlots.closeCycle(fetch_cycle);

    if (rec.isCondBranch()) {
        ++stats.condBranches;
        if (bp.lastMispredicted()) {
            ++stats.mispredicts;
            stats.directionFlushCycles += cfg.redirectPenalty;
            // Wrong-path fetch is squashed when the branch resolves;
            // the front end restarts after the redirect penalty.
            fetchResume = std::max(
                fetchResume, complete_cycle + cfg.redirectPenalty);
            lastFetchLine = ~0ull;   // refetch pays the I-cache again
        }
    } else if (fe != nullptr && fe->lastTargetMispredict()) {
        // A wrong RAS/ITTAGE target is discovered at execute just like
        // a wrong direction, and flushes through the same mechanism —
        // only the attribution differs.
        ++stats.targetMispredicts;
        stats.targetFlushCycles += cfg.redirectPenalty;
        fetchResume = std::max(fetchResume,
                               complete_cycle + cfg.redirectPenalty);
        lastFetchLine = ~0ull;
    }

    ++index;
    ++stats.instructions;
    stats.cycles = std::max(stats.cycles, retire_cycle);
}

} // namespace bpnsp
