/**
 * @file
 * Out-of-order core configuration with the capacity-scaling knob used
 * throughout the paper (Figs. 1, 5, 7, 8): "fetch, decode, execution,
 * load/store buffer, ROB, scheduler, and retire resources" multiply by
 * the scaling factor; pipeline *depths* (front-end length, redirect
 * penalty) do not.
 */

#ifndef BPNSP_PIPELINE_CORE_CONFIG_HPP
#define BPNSP_PIPELINE_CORE_CONFIG_HPP

#include <cstdint>
#include <string>

namespace bpnsp {

/** Structural parameters of the scoreboard core model. */
struct CoreConfig
{
    std::string label = "skylake";

    // Capacities (scaled by the pipeline scaling factor).
    unsigned fetchWidth = 6;    ///< instructions fetched per cycle
    unsigned issueWidth = 8;    ///< scheduler issue slots per cycle
    unsigned retireWidth = 4;   ///< in-order retire slots per cycle
    unsigned robSize = 224;     ///< reorder buffer entries
    unsigned schedSize = 97;    ///< scheduler (RS) entries
    unsigned lqSize = 72;       ///< load queue entries
    unsigned sqSize = 56;       ///< store queue entries

    // Depths (NOT scaled).
    unsigned frontendDepth = 5;     ///< fetch-to-dispatch cycles
    unsigned redirectPenalty = 10;  ///< extra cycles after a flush

    // Execution latencies (cycles); load latency comes from the caches.
    unsigned aluLatency = 1;
    unsigned mulLatency = 3;
    unsigned divLatency = 9;
    unsigned storeLatency = 1;

    /** Skylake-like baseline (the paper's 1x configuration). */
    static CoreConfig
    skylake()
    {
        return CoreConfig{};
    }

    /** This configuration with capacities multiplied by factor. */
    CoreConfig
    scaled(unsigned factor) const
    {
        CoreConfig out = *this;
        out.label = label + "-" + std::to_string(factor) + "x";
        out.fetchWidth *= factor;
        out.issueWidth *= factor;
        out.retireWidth *= factor;
        out.robSize *= factor;
        out.schedSize *= factor;
        out.lqSize *= factor;
        out.sqSize *= factor;
        return out;
    }
};

} // namespace bpnsp

#endif // BPNSP_PIPELINE_CORE_CONFIG_HPP
