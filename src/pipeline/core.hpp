/**
 * @file
 * Trace-driven out-of-order core timing model.
 *
 * A dependency-aware scoreboard in the spirit of ChampSim's simplified
 * core: each retired instruction is assigned fetch, issue, complete,
 * and retire cycles subject to (1) front-end width and I-cache misses,
 * (2) ROB/scheduler/LQ/SQ occupancy, (3) register dependencies and
 * execution latencies (loads probe the D-cache hierarchy), (4) issue
 * and retire widths, and (5) branch mispredictions, which stall the
 * front end until the branch resolves plus a redirect penalty.
 *
 * This reproduces the mechanism behind the paper's IPC results: as
 * capacities scale up, correctly-predicted code exposes more ILP while
 * each misprediction still serializes the machine, so the misprediction
 * penalty dominates and IPC saturates (Fig. 1, Fig. 5).
 */

#ifndef BPNSP_PIPELINE_CORE_HPP
#define BPNSP_PIPELINE_CORE_HPP

#include <cstdint>
#include <vector>

#include "bp/sim.hpp"
#include "frontend/frontend.hpp"
#include "pipeline/cache.hpp"
#include "pipeline/core_config.hpp"
#include "trace/sink.hpp"
#include "vm/isa.hpp"

namespace bpnsp {

/** Aggregate performance counters of one core simulation. */
struct PerfCounters
{
    uint64_t instructions = 0;
    uint64_t cycles = 0;
    uint64_t condBranches = 0;
    uint64_t mispredicts = 0;

    // Frontend-attributed events (zero when no FrontendModel is wired
    // in: the legacy configuration assumes a perfect fetch engine).
    uint64_t targetMispredicts = 0;   ///< wrong RAS/ITTAGE targets
    uint64_t ftqStallCycles = 0;      ///< BTB bubbles the FTQ missed
    uint64_t directionFlushCycles = 0;///< flush cycles: wrong direction
    uint64_t targetFlushCycles = 0;   ///< flush cycles: wrong target

    /** Instructions per cycle. */
    double
    ipc() const
    {
        return cycles ? static_cast<double>(instructions) /
                            static_cast<double>(cycles)
                      : 0.0;
    }

    /** Mispredictions per kilo-instruction. */
    double
    mpki() const
    {
        return instructions
                   ? 1000.0 * static_cast<double>(mispredicts) /
                         static_cast<double>(instructions)
                   : 0.0;
    }

    /** Target mispredictions per kilo-instruction. */
    double
    targetMpki() const
    {
        return instructions
                   ? 1000.0 * static_cast<double>(targetMispredicts) /
                         static_cast<double>(instructions)
                   : 0.0;
    }
};

/**
 * The core model, consuming a trace stream.
 *
 * Branch outcomes are read from a PredictorSim that must be registered
 * *before* this sink in the same fanout, so that by the time the core
 * sees a record the predictor has already resolved it. This lets one
 * predictor feed many core configurations in a single trace pass.
 *
 * A FrontendModel may optionally be wired in the same way (registered
 * before this sink); the core then charges its per-record FTQ stall
 * cycles against fetch and flushes on target mispredicts exactly like
 * direction mispredicts, with the two flush causes accounted
 * separately. With no frontend the fetch engine is target-perfect,
 * which preserves the timing of every pre-frontend configuration
 * bit for bit.
 */
class CoreModel : public TraceSink
{
  public:
    CoreModel(const CoreConfig &config, const PredictorSim &bp_outcomes,
              const FrontendModel *frontend = nullptr);

    void onRecord(const TraceRecord &rec) override;

    /** Results so far. */
    const PerfCounters &counters() const { return stats; }

    /** Cache hierarchy (for miss statistics). */
    const CacheHierarchy &caches() const { return hierarchy; }

    const CoreConfig &config() const { return cfg; }

  private:
    /**
     * In-order slot allocator: grants at most `width` slots per cycle
     * to a monotonically nondecreasing sequence of requests.
     */
    class SlotAllocator
    {
      public:
        explicit SlotAllocator(unsigned width_) : width(width_) {}

        /** Earliest cycle >= bound with a free slot; consumes it. */
        uint64_t
        alloc(uint64_t bound)
        {
            if (bound > cycle) {
                cycle = bound;
                used = 1;
            } else if (used < width) {
                ++used;
            } else {
                ++cycle;
                used = 1;
            }
            return cycle;
        }

        /**
         * Close the group at `at`: no further slots are granted in
         * that cycle. Models the front end's one-taken-branch-per-
         * cycle redirect limit.
         */
        void
        closeCycle(uint64_t at)
        {
            if (at >= cycle) {
                cycle = at;
                used = width;
            }
        }

      private:
        unsigned width;
        uint64_t cycle = 0;
        unsigned used = 0;
    };

    /**
     * Out-of-order slot allocator: grants at most `width` slots per
     * cycle, to requests arriving in any cycle order (the scheduler
     * wakes instructions as operands become ready, not in program
     * order). Backed by a ring of per-cycle counters whose floor
     * advances with the (monotonic) fetch stream.
     */
    class IssueWindow
    {
      public:
        explicit IssueWindow(unsigned width_)
            : width(width_), used(kWindow, 0)
        {}

        /** Advance the window floor (cycles below are immutable). */
        void
        advanceFloor(uint64_t cycle)
        {
            if (cycle <= floor)
                return;
            // Slots of cycles dropping below the new floor are
            // recycled for the cycles entering at the top of the
            // window; clear them as they change identity.
            const uint64_t steps =
                std::min<uint64_t>(cycle - floor, kWindow);
            for (uint64_t i = 0; i < steps; ++i)
                used[(floor + i) % kWindow] = 0;
            floor = cycle;
        }

        /** Earliest cycle >= bound with a free slot; consumes it. */
        uint64_t
        alloc(uint64_t bound)
        {
            uint64_t c = std::max(bound, floor);
            // Clamp far-future requests into the window (rare).
            if (c >= floor + kWindow)
                c = floor + kWindow - 1;
            while (used[c % kWindow] >= width &&
                   c + 1 < floor + kWindow) {
                ++c;
            }
            ++used[c % kWindow];
            return c;
        }

      private:
        static constexpr uint64_t kWindow = 1ull << 15;
        unsigned width;
        uint64_t floor = 0;
        std::vector<uint32_t> used;
    };

    CoreConfig cfg;
    const PredictorSim &bp;
    const FrontendModel *fe;   ///< optional; nullptr = perfect fetch
    CacheHierarchy hierarchy;
    PerfCounters stats;

    SlotAllocator fetchSlots;
    IssueWindow issueSlots;
    SlotAllocator retireSlots;

    uint64_t regReady[kNumRegs] = {};
    std::vector<uint64_t> robRing;    ///< retire cycles, ROB window
    std::vector<uint64_t> schedRing;  ///< issue cycles, scheduler window
    std::vector<uint64_t> lqRing;     ///< load retire cycles
    std::vector<uint64_t> sqRing;     ///< store retire cycles
    uint64_t index = 0;
    uint64_t loadIndex = 0;
    uint64_t storeIndex = 0;
    uint64_t fetchResume = 0;         ///< front end stalled until here
    uint64_t lastRetire = 0;
    uint64_t lastFetchLine = ~0ull;

    unsigned execLatency(const TraceRecord &rec);
};

} // namespace bpnsp

#endif // BPNSP_PIPELINE_CORE_HPP
