#include "pipeline/cache.hpp"

#include "util/bitops.hpp"
#include "util/logging.hpp"

namespace bpnsp {

Cache::Cache(std::string cache_name, uint64_t size_bytes,
             unsigned associativity, unsigned line_bytes,
             unsigned hit_latency, Cache *next_level,
             unsigned memory_latency)
    : cacheName(std::move(cache_name)), assoc(associativity),
      lineShift(log2Floor(line_bytes)),
      numSets(size_bytes / line_bytes / associativity),
      latency(hit_latency), next(next_level), memLatency(memory_latency)
{
    BPNSP_ASSERT(isPowerOfTwo(line_bytes), "line size must be 2^n");
    BPNSP_ASSERT(numSets >= 1, "cache too small: ", cacheName);
    BPNSP_ASSERT(isPowerOfTwo(numSets), "sets must be 2^n: ", cacheName);
    BPNSP_ASSERT(next != nullptr || memLatency > 0,
                 "last level needs a memory latency: ", cacheName);
    ways.assign(numSets * assoc, Way{});
}

uint64_t
Cache::setOf(uint64_t addr) const
{
    return (addr >> lineShift) & (numSets - 1);
}

uint64_t
Cache::tagOf(uint64_t addr) const
{
    return addr >> lineShift;
}

bool
Cache::probe(uint64_t addr) const
{
    const uint64_t set = setOf(addr);
    const uint64_t tag = tagOf(addr);
    for (unsigned w = 0; w < assoc; ++w) {
        const Way &way = ways[set * assoc + w];
        if (way.valid && way.tag == tag)
            return true;
    }
    return false;
}

unsigned
Cache::access(uint64_t addr)
{
    const uint64_t set = setOf(addr);
    const uint64_t tag = tagOf(addr);
    ++useClock;

    for (unsigned w = 0; w < assoc; ++w) {
        Way &way = ways[set * assoc + w];
        if (way.valid && way.tag == tag) {
            way.lastUse = useClock;
            ++hitCount;
            return latency;
        }
    }

    ++missCount;
    // LRU victim selection: any invalid way first, else the oldest.
    Way *victim = &ways[set * assoc];
    for (unsigned w = 0; w < assoc; ++w) {
        Way &way = ways[set * assoc + w];
        if (!way.valid) {
            victim = &way;
            break;
        }
        if (way.lastUse < victim->lastUse)
            victim = &way;
    }
    const unsigned below =
        next != nullptr ? next->access(addr) : memLatency;
    victim->valid = true;
    victim->tag = tag;
    victim->lastUse = useClock;
    return latency + below;
}

void
Cache::reset()
{
    for (auto &way : ways)
        way = Way{};
    useClock = 0;
    hitCount = 0;
    missCount = 0;
}

CacheHierarchy::CacheHierarchy()
    : llc("llc", 2 * 1024 * 1024, 16, 64, 30, nullptr, 160),
      l2("l2", 256 * 1024, 8, 64, 10, &llc),
      l1i("l1i", 32 * 1024, 8, 64, 0, &l2),
      l1d("l1d", 32 * 1024, 8, 64, 4, &l2)
{
}

void
CacheHierarchy::reset()
{
    llc.reset();
    l2.reset();
    l1i.reset();
    l1d.reset();
}

} // namespace bpnsp
