/**
 * @file
 * bpnsp_client: command-line client for a running bpnsp_served.
 *
 * Single-request mode (--op=ping|simulate|branch-stats|h2p|
 * materialize|health) prints one human-readable result; --op=stats
 * pulls the server's live metric-registry snapshot (add --watch to
 * poll it; the watch survives daemon restarts by reconnecting with
 * backoff); --op=loadgen runs the closed-loop load generator (N
 * concurrent clients, optional randomized kills and reply
 * verification) and prints its aggregate tally.
 *
 * --retries=N arms the client-side retry policy (serve/client.hpp):
 * idempotent requests that fail retryably — UNAVAILABLE from a
 * respawning fleet shard, BUSY, admission rejection, a dropped
 * connection — are retried up to N extra times with jittered
 * exponential backoff. This is how a client rides out fleet worker
 * crashes without scripting a loop.
 *
 * Examples:
 *   bpnsp_client --socket=/tmp/b.sock --op=ping
 *   bpnsp_client --socket=/tmp/b.sock --op=simulate \
 *       --workload=mcf_like --predictor=gshare \
 *       --instructions=200000 --first=50000 --count=100000
 *   bpnsp_client --socket=/tmp/b.sock --op=health
 *   bpnsp_client --socket=/tmp/b.sock --op=stats --watch
 *   bpnsp_client --socket=/tmp/b.sock --op=loadgen --clients=32 \
 *       --requests=64 --kill-prob=0.05 --verify --retries=4
 *
 * Exit status: 0 on an Ok reply (loadgen: no transport errors and no
 * verify mismatches), 1 otherwise.
 */

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <sstream>
#include <thread>

#include "util/json.hpp"

#include "core/runner.hpp"
#include "serve/client.hpp"
#include "trace/record.hpp"
#include "util/logging.hpp"
#include "util/options.hpp"

using namespace bpnsp;
using namespace bpnsp::serve;

namespace {

/** The --retries/--retry-*-ms knobs as a RetryPolicy. */
RetryPolicy
retryPolicyFromOptions(const OptionParser &opts)
{
    RetryPolicy policy;
    policy.maxAttempts =
        1 + static_cast<unsigned>(opts.getInt("retries"));
    policy.baseBackoffMs =
        static_cast<uint64_t>(opts.getInt("retry-base-ms"));
    policy.maxBackoffMs =
        static_cast<uint64_t>(opts.getInt("retry-cap-ms"));
    policy.seed = static_cast<uint64_t>(opts.getInt("seed"));
    return policy;
}

std::vector<std::string>
splitCsv(const std::string &csv)
{
    std::vector<std::string> out;
    std::stringstream ss(csv);
    std::string item;
    while (std::getline(ss, item, ',')) {
        if (!item.empty())
            out.push_back(item);
    }
    return out;
}

int
runOne(const OptionParser &opts, const std::string &op)
{
    ServeClient client;
    Status st;
    if (const int64_t port = opts.getInt("tcp-port"); port > 0)
        st = client.connectTcp(static_cast<int>(port));
    else
        st = client.connectUnix(opts.getString("socket"));
    if (!st.ok()) {
        warn("bpnsp_client: ", st.str());
        return 1;
    }
    client.setRetryPolicy(retryPolicyFromOptions(opts));
    client.setHedgeMs(static_cast<uint64_t>(opts.getInt("hedge-ms")));

    if (op == "health") {
        std::vector<ShardHealth> shards;
        st = client.health(&shards);
        if (!st.ok()) {
            warn("bpnsp_client: ", st.str());
            return 1;
        }
        std::printf("health: %zu shard(s)\n", shards.size());
        bool allReady = true;
        for (const ShardHealth &row : shards) {
            std::printf("  shard %u: %-10s pid=%llu restarts=%u "
                        "deaths=%u queue=%u queued_cost_ms=%llu\n",
                        row.shard, shardStateName(row.state),
                        static_cast<unsigned long long>(row.pid),
                        row.restarts, row.deaths, row.queueDepth,
                        static_cast<unsigned long long>(
                            row.queuedCostMs));
            if (row.state != ShardHealth::Ready)
                allReady = false;
        }
        return allReady ? 0 : 1;
    }

    ServeRequest request;
    request.workload = opts.getString("workload");
    request.inputIdx = static_cast<uint32_t>(opts.getInt("input"));
    request.instructions =
        static_cast<uint64_t>(opts.getInt("instructions"));
    request.predictor = opts.getString("predictor");
    request.first = static_cast<uint64_t>(opts.getInt("first"));
    request.count = static_cast<uint64_t>(opts.getInt("count"));
    request.sliceLength =
        static_cast<uint64_t>(opts.getInt("slice"));
    request.topK = static_cast<uint32_t>(opts.getInt("top"));
    request.deadlineMs =
        static_cast<uint32_t>(opts.getInt("deadline-ms"));

    if (op == "ping") {
        request.type = MessageType::Ping;
    } else if (op == "simulate") {
        request.type = MessageType::Simulate;
    } else if (op == "branch-stats") {
        request.type = MessageType::BranchStats;
    } else if (op == "h2p") {
        request.type = MessageType::H2p;
    } else if (op == "materialize") {
        request.type = MessageType::Materialize;
    } else {
        fatal("unknown --op \"", op,
              "\" (want ping|simulate|branch-stats|h2p|materialize|"
              "health|stats|loadgen)");
    }

    ServeReply reply;
    st = client.call(request, &reply);
    if (!st.ok()) {
        warn("bpnsp_client: ", st.str());
        return 1;
    }
    if (reply.code != WireCode::Ok) {
        std::printf("%s: %s\n", wireCodeName(reply.code),
                    reply.message.c_str());
        return 1;
    }

    switch (reply.type) {
      case MessageType::PingReply:
        std::printf("pong: %s\n", reply.serverInfo.c_str());
        break;
      case MessageType::SimulateReply:
        std::printf("simulate %s/%s: %llu records, %llu cond execs, "
                    "%llu mispredicts, accuracy %.6f\n",
                    request.workload.c_str(),
                    request.predictor.c_str(),
                    static_cast<unsigned long long>(reply.delivered),
                    static_cast<unsigned long long>(reply.condExecs),
                    static_cast<unsigned long long>(
                        reply.condMispreds),
                    bitsDouble(reply.accuracyBits));
        break;
      case MessageType::BranchStatsReply:
        std::printf("branch stats %s/%s: %llu records, %llu cond "
                    "execs, %llu mispredicts, %zu branch row(s)\n",
                    request.workload.c_str(),
                    request.predictor.c_str(),
                    static_cast<unsigned long long>(reply.delivered),
                    static_cast<unsigned long long>(reply.condExecs),
                    static_cast<unsigned long long>(
                        reply.condMispreds),
                    reply.branches.size());
        for (const BranchRow &row : reply.branches)
            std::printf("  ip=0x%llx execs=%llu mispreds=%llu "
                        "taken=%llu\n",
                        static_cast<unsigned long long>(row.ip),
                        static_cast<unsigned long long>(row.execs),
                        static_cast<unsigned long long>(row.mispreds),
                        static_cast<unsigned long long>(row.taken));
        // Target columns: the server sends the per-class block in the
        // analysis layer's stable class order (Call, Ret, JumpInd,
        // CallInd); print it as received so output is byte-stable
        // across runs. Absent from pre-frontend servers.
        for (const TargetClassStat &row : reply.targetClasses)
            std::printf("  target-class %s: execs=%llu "
                        "target-mispreds=%llu\n",
                        instrClassName(
                            static_cast<InstrClass>(row.cls)),
                        static_cast<unsigned long long>(row.execs),
                        static_cast<unsigned long long>(
                            row.targetMispreds));
        break;
      case MessageType::H2pReply:
        std::printf("h2p %s/%s: %zu H2P ip(s) over %llu slice(s), "
                    "avg/slice %.2f, avg mispred fraction %.4f\n",
                    request.workload.c_str(),
                    request.predictor.c_str(), reply.h2pIps.size(),
                    static_cast<unsigned long long>(reply.slices),
                    bitsDouble(reply.avgPerSliceBits),
                    bitsDouble(reply.avgMispredFractionBits));
        for (const uint64_t ip : reply.h2pIps)
            std::printf("  0x%llx\n",
                        static_cast<unsigned long long>(ip));
        break;
      case MessageType::MaterializeReply:
        std::printf("materialized %s input %u: digest %s, %llu "
                    "records at %s\n",
                    request.workload.c_str(), request.inputIdx,
                    reply.digest.c_str(),
                    static_cast<unsigned long long>(reply.records),
                    reply.path.c_str());
        break;
      default:
        std::printf("unexpected reply type %s\n",
                    messageTypeName(reply.type));
        return 1;
    }
    return 0;
}

/** "123456789" -> "123,456,789" (stats tables only). */
std::string
withThousands(uint64_t v)
{
    std::string digits = std::to_string(v);
    std::string out;
    const size_t n = digits.size();
    for (size_t i = 0; i < n; ++i) {
        if (i != 0 && (n - i) % 3 == 0)
            out += ',';
        out += digits[i];
    }
    return out;
}

/** One quantile cell: ns as a human latency, "-" when null. */
std::string
quantileCell(const JsonValue &hist, const char *key)
{
    const JsonValue &v = hist.get(key);
    if (!v.isNumber())
        return "-";
    const double ns = v.asDouble();
    char buf[32];
    if (ns >= 1e9)
        std::snprintf(buf, sizeof(buf), "%.2fs", ns / 1e9);
    else if (ns >= 1e6)
        std::snprintf(buf, sizeof(buf), "%.2fms", ns / 1e6);
    else if (ns >= 1e3)
        std::snprintf(buf, sizeof(buf), "%.1fus", ns / 1e3);
    else
        std::snprintf(buf, sizeof(buf), "%.0fns", ns);
    return buf;
}

/**
 * Render one bpnsp-stats-v1 document for a terminal. Parse failures
 * degrade to printing the raw JSON: a newer server must stay
 * inspectable from an older client.
 */
void
printStatsPretty(const std::string &json, uint64_t trace_id)
{
    JsonValue doc;
    if (!JsonValue::parse(json, &doc).ok() || !doc.isObject()) {
        std::fputs(json.c_str(), stdout);
        return;
    }
    std::printf("%s  git %s  wall %.1fs  (stats trace id %llu)\n",
                doc.get("schema").asString().c_str(),
                doc.get("git").asString().c_str(),
                doc.get("wall_seconds").asDouble(),
                static_cast<unsigned long long>(trace_id));

    std::printf("counters:\n");
    for (const auto &[name, value] : doc.get("counters").members())
        std::printf("  %-32s %s\n", name.c_str(),
                    withThousands(value.asUint()).c_str());

    if (!doc.get("gauges").members().empty()) {
        std::printf("gauges:\n");
        for (const auto &[name, value] : doc.get("gauges").members())
            std::printf("  %-32s %.6g\n", name.c_str(),
                        value.asDouble());
    }

    if (!doc.get("histograms").members().empty()) {
        std::printf("histograms:%*s count      p50      p90      p99"
                    "     p999\n",
                    24, "");
        for (const auto &[name, h] : doc.get("histograms").members())
            std::printf("  %-32s %7llu %8s %8s %8s %8s\n", name.c_str(),
                        static_cast<unsigned long long>(
                            h.get("count").asUint()),
                        quantileCell(h, "p50").c_str(),
                        quantileCell(h, "p90").c_str(),
                        quantileCell(h, "p99").c_str(),
                        quantileCell(h, "p999").c_str());
    }
}

/**
 * --op=stats: pull the live snapshot once, or poll it with --watch.
 * --raw prints the JSON document verbatim for scripts.
 *
 * A watch is a monitoring loop, so a daemon restart mid-watch must
 * not kill it: on a dropped connection the watch reconnects with
 * capped backoff and keeps polling. One-shot mode (no --watch) keeps
 * strict fail-fast semantics for scripts.
 */
int
runStats(const OptionParser &opts)
{
    ServeClient client;
    Status st;
    if (const int64_t port = opts.getInt("tcp-port"); port > 0)
        st = client.connectTcp(static_cast<int>(port));
    else
        st = client.connectUnix(opts.getString("socket"));

    const bool raw = opts.getFlag("raw");
    const bool watch = opts.getFlag("watch");
    const int64_t watchMs = opts.getInt("watch-ms");
    if (!st.ok()) {
        warn("bpnsp_client: ", st.str());
        if (!watch)
            return 1;
    }

    uint64_t reconnectBackoffMs = 0;
    for (;;) {
        std::string json;
        uint64_t traceId = 0;
        st = client.connected() ? client.stats(&json, &traceId)
                                : Status::unavailable("not connected");
        if (!st.ok()) {
            if (!watch) {
                warn("bpnsp_client: ", st.str());
                return 1;
            }
            // Daemon gone (restart, crash, drain): back off, then try
            // the endpoint again. The watch outlives the daemon.
            client.close();
            reconnectBackoffMs =
                reconnectBackoffMs == 0
                    ? 100
                    : std::min<uint64_t>(reconnectBackoffMs * 2, 2000);
            warn("bpnsp_client: ", st.str(), "; reconnecting in ",
                 reconnectBackoffMs, " ms");
            std::this_thread::sleep_for(
                std::chrono::milliseconds(reconnectBackoffMs));
            client.reconnect();
            continue;
        }
        reconnectBackoffMs = 0;
        if (raw)
            std::fputs(json.c_str(), stdout);
        else
            printStatsPretty(json, traceId);
        std::fflush(stdout);
        if (!watch)
            return 0;
        std::printf("\n");
        std::this_thread::sleep_for(
            std::chrono::milliseconds(watchMs > 0 ? watchMs : 1000));
    }
}

int
runLoad(const OptionParser &opts)
{
    LoadGenConfig cfg;
    cfg.socketPath = opts.getString("socket");
    cfg.clients = static_cast<unsigned>(opts.getInt("clients"));
    cfg.requestsPerClient =
        static_cast<unsigned>(opts.getInt("requests"));
    cfg.workload = opts.getString("workload");
    cfg.inputIdx = static_cast<uint32_t>(opts.getInt("input"));
    cfg.instructions =
        static_cast<uint64_t>(opts.getInt("instructions"));
    cfg.predictors = splitCsv(opts.getString("predictor"));
    if (cfg.predictors.empty())
        cfg.predictors = {"gshare"};
    cfg.sliceRecords = static_cast<uint64_t>(opts.getInt("count"));
    cfg.killProb = opts.getDouble("kill-prob");
    cfg.seed = static_cast<uint64_t>(opts.getInt("seed"));
    cfg.verify = opts.getFlag("verify");
    cfg.retry = retryPolicyFromOptions(opts);
    cfg.openLoopHz = opts.getDouble("open-loop-hz");
    cfg.interactiveFraction = opts.getDouble("interactive-frac");
    cfg.deadlineMs =
        static_cast<uint32_t>(opts.getInt("deadline-ms"));
    cfg.hedgeMs = static_cast<uint64_t>(opts.getInt("hedge-ms"));

    const LoadGenResult result = runLoadGen(cfg);
    std::printf(
        "loadgen: %u client(s) x %u request(s): %llu ok, %llu "
        "rejected, %llu error(s), %llu transport, %llu killed, %llu "
        "mismatch(es), %llu retried (%llu retries, %llu gave up, "
        "first-try %.4f) in %.2fs (%.0f req/s, p50 %.2fms, p99 "
        "%.2fms)\n",
        cfg.clients, cfg.requestsPerClient,
        static_cast<unsigned long long>(result.ok),
        static_cast<unsigned long long>(result.rejected),
        static_cast<unsigned long long>(result.errors),
        static_cast<unsigned long long>(result.transport),
        static_cast<unsigned long long>(result.killed),
        static_cast<unsigned long long>(result.mismatches),
        static_cast<unsigned long long>(result.retried),
        static_cast<unsigned long long>(result.retries),
        static_cast<unsigned long long>(result.gaveUp),
        result.firstTryFraction(), result.elapsedSeconds,
        result.requestsPerSecond(), result.p50Ms, result.p99Ms);
    // Machine-parsable overload line (one key=value row the soak
    // script greps): per-class tails plus the shed/expire/hedge story.
    std::printf(
        "loadgen-overload: interactive_p50_ms=%.3f "
        "interactive_p99_ms=%.3f batch_p50_ms=%.3f batch_p99_ms=%.3f "
        "expired=%llu hedges=%llu hedge_wins=%llu rejected=%llu "
        "ok=%llu mismatches=%llu\n",
        result.interactiveP50Ms, result.interactiveP99Ms,
        result.batchP50Ms, result.batchP99Ms,
        static_cast<unsigned long long>(result.expired),
        static_cast<unsigned long long>(result.hedges),
        static_cast<unsigned long long>(result.hedgeWins),
        static_cast<unsigned long long>(result.rejected),
        static_cast<unsigned long long>(result.ok),
        static_cast<unsigned long long>(result.mismatches));

    if (result.mismatches != 0)
        return 1;
    // Kills close connections deliberately, so transport errors are
    // only fatal in a kill-free run.
    if (cfg.killProb == 0.0 && result.transport != 0)
        return 1;
    return result.ok == 0 ? 1 : 0;
}

} // namespace

int
main(int argc, char **argv)
{
    OptionParser opts("Query a running bpnsp_served.");
    opts.addString("socket", "bpnsp_served.sock",
                   "server UNIX-domain socket path");
    opts.addInt("tcp-port", 0,
                "connect to 127.0.0.1:PORT instead of the socket");
    opts.addString("op", "ping",
                   "ping|simulate|branch-stats|h2p|materialize|health|"
                   "stats|loadgen");
    opts.addString("workload", "mcf_like", "workload name");
    opts.addInt("input", 0, "workload input index");
    opts.addInt("instructions", 200000, "trace length (cache key)");
    opts.addString("predictor", "gshare",
                   "predictor name (loadgen: comma-separated pool)");
    opts.addInt("first", 0, "simulate: slice start record");
    opts.addInt("count", 0,
                "simulate: slice record count (0 = to end; loadgen: "
                "random slice width, 0 = whole trace)");
    opts.addInt("slice", 0,
                "branch-stats/h2p: slice length (0 = whole trace)");
    opts.addInt("top", 0, "branch-stats: top-K rows (0 = all)");
    opts.addFlag("watch", "stats: poll the snapshot until killed");
    opts.addInt("watch-ms", 1000, "stats: --watch poll period");
    opts.addFlag("raw", "stats: print the JSON document verbatim");
    opts.addInt("deadline-ms", 0, "per-request deadline (0 = none)");
    opts.addInt("hedge-ms", 0,
                "hedge idempotent requests on a second connection "
                "after N ms / the observed p95 (0 = off)");
    opts.addInt("clients", 4, "loadgen: concurrent clients");
    opts.addInt("requests", 32, "loadgen: requests per client");
    opts.addDouble("open-loop-hz", 0.0,
                   "loadgen: per-client open-loop send rate in req/s "
                   "(0 = closed loop); offered load does not slow "
                   "down when the server does");
    opts.addDouble("interactive-frac", 0.0,
                   "loadgen: fraction of requests sent as interactive "
                   "BranchStats reads");
    opts.addDouble("kill-prob", 0.0,
                   "loadgen: P(vanish before reading the reply)");
    opts.addInt("seed", 1, "loadgen: randomization seed");
    opts.addInt("retries", 0,
                "extra attempts for retryable failures of idempotent "
                "requests (0 = single-shot)");
    opts.addInt("retry-base-ms", 10, "first retry's backoff scale");
    opts.addInt("retry-cap-ms", 1000, "retry backoff cap");
    opts.addFlag("verify",
                 "loadgen: check every Ok reply bit-for-bit against "
                 "a direct in-process run (needs BPNSP_TRACE_CACHE "
                 "or --trace-cache pointing at the server's corpus)");
    opts.addString("trace-cache", "",
                   "trace corpus directory (verify mode)");
    opts.parse(argc, argv);

    if (const std::string &dir = opts.getString("trace-cache");
        !dir.empty())
        setTraceCacheDir(dir);

    const std::string op = opts.getString("op");
    if (op == "loadgen")
        return runLoad(opts);
    if (op == "stats")
        return runStats(opts);
    return runOne(opts, op);
}
