#include "serve/fleet.hpp"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>

#include <fcntl.h>
#include <poll.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <sys/un.h>
#include <sys/wait.h>
#include <unistd.h>

#include "obs/metrics.hpp"
#include "obs/report.hpp"
#include "serve/client.hpp"        // isIdempotentRequest
#include "tracestore/format.hpp"   // fnv1a
#include "util/logging.hpp"
#include "util/signals.hpp"

namespace bpnsp::serve {

namespace {

/** Monitor tick: heartbeat checks + respawn deadlines. */
constexpr int kMonitorTickMs = 50;

obs::Counter &
fleetDeaths()
{
    static obs::Counter &c = obs::counter("serve.fleet.worker_deaths");
    return c;
}

obs::Counter &
fleetRespawns()
{
    static obs::Counter &c = obs::counter("serve.fleet.respawns");
    return c;
}

obs::Counter &
fleetBreakerTrips()
{
    static obs::Counter &c = obs::counter("serve.fleet.breaker_trips");
    return c;
}

obs::Counter &
fleetWedgeKills()
{
    static obs::Counter &c = obs::counter("serve.fleet.wedge_kills");
    return c;
}

obs::Counter &
fleetUnavailable()
{
    static obs::Counter &c = obs::counter("serve.fleet.unavailable");
    return c;
}

obs::Counter &
fleetRouted()
{
    static obs::Counter &c = obs::counter("serve.fleet.routed");
    return c;
}

obs::Counter &
fleetHedges()
{
    static obs::Counter &c = obs::counter("serve.hedges");
    return c;
}

obs::Counter &
fleetHedgeWins()
{
    static obs::Counter &c = obs::counter("serve.hedge_wins");
    return c;
}

obs::Counter &
fleetExpired()
{
    static obs::Counter &c = obs::counter("serve.expired");
    return c;
}

uint64_t
steadyMs()
{
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

/** Heartbeat-file age in ms (UINT64_MAX when unreadable). */
uint64_t
heartbeatAgeMs(const std::string &path)
{
    struct stat st;
    if (::stat(path.c_str(), &st) != 0)
        return UINT64_MAX;
    struct timespec now;
    ::clock_gettime(CLOCK_REALTIME, &now);
    const int64_t age =
        (now.tv_sec - st.st_mtim.tv_sec) * 1000 +
        (now.tv_nsec - st.st_mtim.tv_nsec) / 1000000;
    return age < 0 ? 0 : static_cast<uint64_t>(age);
}

/** Create-or-touch a heartbeat file (mtime = now). */
void
touchFile(const std::string &path)
{
    if (::utimensat(AT_FDCWD, path.c_str(), nullptr, 0) == 0)
        return;
    if (FILE *f = std::fopen(path.c_str(), "w"))
        std::fclose(f);
}

/** Blocking connect to a worker's UNIX socket (-1 on failure). */
int
connectWorker(const std::string &path)
{
    struct sockaddr_un addr;
    if (path.size() >= sizeof(addr.sun_path))
        return -1;
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0)
        return -1;
    std::memset(&addr, 0, sizeof(addr));
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, path.c_str(),
                 sizeof(addr.sun_path) - 1);
    if (::connect(fd, reinterpret_cast<struct sockaddr *>(&addr),
                  sizeof(addr)) != 0) {
        ::close(fd);
        return -1;
    }
    return fd;
}

/**
 * Read one whole reply frame (header + payload) from `fd` into
 * `frame`, each wait bounded by `timeout_ms` (-1 = forever). False on
 * any failure; the fd is left for the caller to close.
 */
bool
readWholeFrame(int fd, std::vector<uint8_t> *frame, FrameHeader *header,
               int timeout_ms)
{
    uint8_t head[kFrameHeaderBytes];
    if (!readExactFd(fd, head, sizeof(head), timeout_ms).ok())
        return false;
    if (!parseFrameHeader(head, sizeof(head), header).ok())
        return false;
    frame->assign(kFrameHeaderBytes + header->payloadLen, 0);
    std::memcpy(frame->data(), head, kFrameHeaderBytes);
    if (header->payloadLen > 0 &&
        !readExactFd(fd, frame->data() + kFrameHeaderBytes,
                     header->payloadLen, timeout_ms)
             .ok())
        return false;
    return true;
}

/**
 * Best-effort Cancel for `target_request_id` on a worker connection
 * that is about to be abandoned — the worker can drop the duplicate
 * from its queue (or cancel it mid-run) instead of finishing it for
 * nobody. The CancelReply is never read; the close that follows takes
 * care of it.
 */
void
sendCancelFrame(int fd, uint64_t target_request_id)
{
    ServeRequest cancel;
    cancel.type = MessageType::Cancel;
    cancel.cancelTargetId = target_request_id;
    std::vector<uint8_t> frame;
    if (encodeFrame(MessageType::Cancel, target_request_id,
                    encodeRequestPayload(cancel), &frame)
            .ok())
        writeAllFd(fd, frame.data(), frame.size(), 1000);
}

} // namespace

unsigned
fleetShardFor(const std::string &workload, uint32_t input_idx,
              uint64_t instructions, unsigned workers)
{
    if (workers <= 1)
        return 0;
    std::string key = workload;
    key += ':';
    key += std::to_string(input_idx);
    key += ':';
    key += std::to_string(instructions);
    return static_cast<unsigned>(
        fnv1a(key.data(), key.size()) % workers);
}

/** Supervision state of one shard (under shardsMu). */
struct FleetSupervisor::Shard
{
    uint32_t index = 0;
    pid_t pid = 0;                 ///< 0 = no live worker
    uint8_t state = ShardHealth::Respawning;
    uint32_t restarts = 0;
    uint32_t deaths = 0;
    uint32_t breakerTrips = 0;
    uint64_t spawnedAtMs = 0;
    uint64_t respawnAtMs = 0;      ///< Respawning: next spawn time
    uint64_t cooldownUntilMs = 0;  ///< Degraded: breaker re-probe time
    uint64_t backoffMs = 0;        ///< current respawn backoff
    std::deque<uint64_t> deathTimesMs;   ///< breaker window
};

FleetSupervisor::FleetSupervisor(FleetConfig config)
    : cfg(std::move(config))
{
    if (cfg.workers == 0)
        cfg.workers = 1;
    if (cfg.heartbeatMs == 0)
        cfg.heartbeatMs = 50;
    if (cfg.breakerDeaths == 0)
        cfg.breakerDeaths = 1;
}

FleetSupervisor::~FleetSupervisor()
{
    if (started && !stopped)
        drain();
}

std::string
FleetSupervisor::workerSocketPath(unsigned shard) const
{
    return cfg.socketPath + ".w" + std::to_string(shard);
}

std::string
FleetSupervisor::heartbeatPath(unsigned shard) const
{
    return workerSocketPath(shard) + ".hb";
}

Status
FleetSupervisor::start()
{
    if (started)
        return Status::invalidArgument("fleet already started");
    if (cfg.socketPath.empty())
        return Status::invalidArgument("fleet: socket path required");
    if (cfg.workerCommand.empty())
        return Status::invalidArgument(
            "fleet: worker command required (argv[0] = the "
            "bpnsp_served binary)");

    childPipeFd = signals::installChildNotifyPipe();
    if (childPipeFd < 0)
        return Status::ioError("fleet: SIGCHLD self-pipe failed");

    // Public listener, bound before any worker spawns so a client
    // that connects during startup parks in the accept queue instead
    // of failing.
    struct sockaddr_un addr;
    if (cfg.socketPath.size() >= sizeof(addr.sun_path))
        return Status::invalidArgument(
            "fleet: socket path too long: " + cfg.socketPath);
    listenFd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (listenFd < 0)
        return Status::ioError(std::string("fleet: socket(): ") +
                               std::strerror(errno));
    std::memset(&addr, 0, sizeof(addr));
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, cfg.socketPath.c_str(),
                 sizeof(addr.sun_path) - 1);
    ::unlink(cfg.socketPath.c_str());
    if (::bind(listenFd, reinterpret_cast<struct sockaddr *>(&addr),
               sizeof(addr)) != 0 ||
        ::listen(listenFd, 128) != 0) {
        const Status st = Status::ioError(
            "fleet: bind/listen on " + cfg.socketPath + ": " +
            std::strerror(errno));
        ::close(listenFd);
        listenFd = -1;
        return st;
    }

    {
        std::lock_guard<std::mutex> lock(shardsMu);
        shards.resize(cfg.workers);
        for (unsigned i = 0; i < cfg.workers; ++i) {
            shards[i].index = i;
            spawnShardLocked(shards[i], /*respawn=*/false);
        }
    }

    started = true;
    quitFlag.store(false);
    acceptingFlag.store(true);
    monitorThread = std::thread([this] { monitorLoop(); });
    acceptThread = std::thread([this] { acceptLoop(); });

    static obs::Gauge &workersGauge =
        obs::gauge("serve.fleet.workers");
    workersGauge.set(static_cast<double>(cfg.workers));
    inform("fleet serving on ", cfg.socketPath, " (", cfg.workers,
           " worker process(es), heartbeat ", cfg.heartbeatMs,
           " ms, stall bound ", cfg.stallMs, " ms)");
    return Status();
}

void
FleetSupervisor::spawnShardLocked(Shard &shard, bool respawn)
{
    const std::string wsock = workerSocketPath(shard.index);
    const std::string hb = heartbeatPath(shard.index);

    // A stale socket from the dead worker must go before the fresh
    // worker binds; the heartbeat baseline is "spawn time" so the
    // watchdog never reaps a worker for being slow to start.
    ::unlink(wsock.c_str());
    touchFile(hb);

    // argv is fully materialized BEFORE fork so the child touches no
    // allocator: between fork and exec only close() and execv run —
    // both async-signal-safe — which keeps fork-from-a-threaded-
    // supervisor (respawns happen on the monitor thread) sound.
    std::vector<std::string> args = cfg.workerCommand;
    args.push_back("--socket=" + wsock);
    args.push_back("--fleet-worker=" + std::to_string(shard.index));
    args.push_back("--heartbeat-file=" + hb);
    args.push_back("--heartbeat-ms=" + std::to_string(cfg.heartbeatMs));
    args.push_back("--faults-bump=" + std::to_string(shard.index + 1));
    std::vector<char *> argv;
    argv.reserve(args.size() + 1);
    for (std::string &a : args)
        argv.push_back(a.data());
    argv.push_back(nullptr);

    const pid_t pid = ::fork();
    if (pid < 0) {
        warn("fleet: fork() for shard ", shard.index, ": ",
             std::strerror(errno));
        shard.state = ShardHealth::Respawning;
        shard.respawnAtMs = steadyMs() + cfg.backoffBaseMs;
        return;
    }
    if (pid == 0) {
        // Child: drop every inherited descriptor except stdio so a
        // worker never pins the supervisor's listener, pipes, or a
        // client connection open past its own life.
        for (int fd = 3; fd < 4096; ++fd)
            ::close(fd);
        ::execv(argv[0], argv.data());
        ::_Exit(127);   // exec failed; reaped as an instant death
    }

    shard.pid = pid;
    shard.state = ShardHealth::Ready;
    shard.spawnedAtMs = steadyMs();
    shard.respawnAtMs = 0;
    if (respawn) {
        ++shard.restarts;
        fleetRespawns().inc();
        inform("fleet: respawned shard ", shard.index, " as pid ", pid,
               " (restart #", shard.restarts, ")");
    }
}

void
FleetSupervisor::reapDeaths()
{
    for (;;) {
        int wstatus = 0;
        const pid_t pid = ::waitpid(-1, &wstatus, WNOHANG);
        if (pid <= 0)
            return;
        std::lock_guard<std::mutex> lock(shardsMu);
        Shard *shard = nullptr;
        for (Shard &s : shards)
            if (s.pid == pid)
                shard = &s;
        if (shard == nullptr)
            continue;   // not a fleet worker

        const uint64_t now = steadyMs();
        const uint64_t uptime = now - shard->spawnedAtMs;
        shard->pid = 0;
        ++shard->deaths;
        fleetDeaths().inc();
        warn("fleet: shard ", shard->index, " worker pid ", pid,
             " died (", WIFSIGNALED(wstatus) ? "signal " : "exit ",
             WIFSIGNALED(wstatus) ? WTERMSIG(wstatus)
                                  : WEXITSTATUS(wstatus),
             ") after ", uptime, " ms");

        // Rapid deaths double the backoff; a worker that lived a
        // while earns a fresh one.
        if (uptime < 1000)
            shard->backoffMs =
                std::min(cfg.backoffCapMs,
                         std::max(cfg.backoffBaseMs,
                                  shard->backoffMs * 2));
        else
            shard->backoffMs = cfg.backoffBaseMs;

        shard->deathTimesMs.push_back(now);
        while (!shard->deathTimesMs.empty() &&
               now - shard->deathTimesMs.front() > cfg.breakerWindowMs)
            shard->deathTimesMs.pop_front();

        if (shard->deathTimesMs.size() >=
            static_cast<size_t>(cfg.breakerDeaths)) {
            // Crash loop: stop burning spawns, degrade the shard.
            shard->state = ShardHealth::Degraded;
            shard->cooldownUntilMs = now + cfg.breakerCooldownMs;
            shard->deathTimesMs.clear();
            ++shard->breakerTrips;
            fleetBreakerTrips().inc();
            warn("fleet: shard ", shard->index,
                 " is crash-looping; breaker open for ",
                 cfg.breakerCooldownMs, " ms (trip #",
                 shard->breakerTrips, ")");
        } else {
            shard->state = ShardHealth::Respawning;
            shard->respawnAtMs = now + shard->backoffMs;
        }
    }
}

void
FleetSupervisor::monitorLoop()
{
    while (!quitFlag.load()) {
        struct pollfd pfd = {childPipeFd, POLLIN, 0};
        const int rc = ::poll(&pfd, 1, kMonitorTickMs);
        if (rc > 0 && (pfd.revents & POLLIN) != 0) {
            uint8_t sink[64];
            while (::read(childPipeFd, sink, sizeof(sink)) > 0) {
            }
        }
        reapDeaths();

        const uint64_t now = steadyMs();
        std::lock_guard<std::mutex> lock(shardsMu);
        for (Shard &shard : shards) {
            if (shard.state == ShardHealth::Ready && shard.pid > 0) {
                // A worker that stopped pulsing is wedged, not dead:
                // SIGCHLD will never fire on its own. Kill it and let
                // the death flow through the normal respawn path.
                const uint64_t age =
                    heartbeatAgeMs(heartbeatPath(shard.index));
                if (age != UINT64_MAX && age > cfg.stallMs) {
                    warn("fleet: shard ", shard.index, " pid ",
                         shard.pid, " heartbeat stale for ", age,
                         " ms; killing wedged worker");
                    fleetWedgeKills().inc();
                    ::kill(shard.pid, SIGKILL);
                }
            } else if (shard.state == ShardHealth::Respawning &&
                       shard.pid == 0 && now >= shard.respawnAtMs) {
                spawnShardLocked(shard, /*respawn=*/true);
            } else if (shard.state == ShardHealth::Degraded &&
                       now >= shard.cooldownUntilMs) {
                // Half-open probe: one spawn. If it crash-loops again
                // the breaker re-trips after breakerDeaths deaths.
                spawnShardLocked(shard, /*respawn=*/true);
            }
        }
    }
}

// --- router ----------------------------------------------------------

void
FleetSupervisor::registerConnFd(int fd)
{
    std::lock_guard<std::mutex> lock(connMu);
    connFds.insert(fd);
}

void
FleetSupervisor::unregisterConnFd(int fd)
{
    std::lock_guard<std::mutex> lock(connMu);
    connFds.erase(fd);
}

void
FleetSupervisor::acceptLoop()
{
    static obs::Counter &connections =
        obs::counter("serve.fleet.connections");
    while (acceptingFlag.load()) {
        const int fd = ::accept(listenFd, nullptr, nullptr);
        if (fd < 0) {
            if (errno == EINTR)
                continue;
            break;   // listener closed: drain in progress
        }
        connections.inc();
        std::lock_guard<std::mutex> lock(connMu);
        // Reap router threads that already finished so a long soak
        // does not accumulate exited-but-unjoined threads.
        for (const uint64_t id : finishedConnIds) {
            const auto it = connThreads.find(id);
            if (it != connThreads.end()) {
                it->second.join();
                connThreads.erase(it);
            }
        }
        finishedConnIds.clear();
        const uint64_t id = nextConnId++;
        connFds.insert(fd);
        connThreads.emplace(
            id, std::thread([this, fd, id] { serveConn(fd, id); }));
    }
}

bool
FleetSupervisor::sendRouterReply(int client_fd,
                                 const ServeReply &reply,
                                 uint64_t request_id)
{
    std::vector<uint8_t> frame;
    if (!encodeFrame(reply.type, request_id,
                     encodeReplyPayload(reply), &frame)
             .ok())
        return false;
    return writeAllFd(client_fd, frame.data(), frame.size(),
                      /*poll_timeout_ms=*/5000)
        .ok();
}

/**
 * Forward one request frame verbatim to the owning worker and relay
 * the reply frame verbatim back. Returns false only when the CLIENT
 * side failed (connection over); worker-side failures degrade to an
 * UNAVAILABLE reply and the client connection survives.
 */
bool
FleetSupervisor::forwardToShard(unsigned shard_idx, int client_fd,
                                const uint8_t *frame, size_t frame_len,
                                std::vector<int> &upstreams,
                                uint64_t request_id,
                                const ServeRequest &request)
{
    // Routing decision against the shard table: a degraded or
    // down shard answers immediately with a retry-after hint sized to
    // when the worker could actually be back — never a hang.
    uint64_t retryAfterMs = 0;
    bool routable = true;
    {
        std::lock_guard<std::mutex> lock(shardsMu);
        const Shard &shard = shards[shard_idx];
        const uint64_t now = steadyMs();
        if (shard.state == ShardHealth::Degraded) {
            routable = false;
            retryAfterMs = shard.cooldownUntilMs > now
                               ? shard.cooldownUntilMs - now
                               : cfg.backoffBaseMs;
        } else if (shard.pid == 0) {
            routable = false;
            retryAfterMs = shard.respawnAtMs > now
                               ? shard.respawnAtMs - now
                               : cfg.backoffBaseMs;
        }
    }

    if (routable) {
        int &up = upstreams[shard_idx];
        for (int attempt = 0; attempt < 2; ++attempt) {
            if (up < 0) {
                up = connectWorker(workerSocketPath(shard_idx));
                if (up < 0)
                    break;
                registerConnFd(up);
            }
            // Worker-bound writes wait at most 5 s; the reply read is
            // unbounded because a legitimately cold trace can take a
            // while — a worker that dies instead (or is SIGKILLed by
            // the wedge watchdog) breaks the read with an error.
            if (!writeAllFd(up, frame, frame_len, 5000).ok()) {
                unregisterConnFd(up);
                ::close(up);
                up = -1;
                continue;   // stale cached conn: reconnect once
            }

            // Hedge window: give the owning worker cfg.hedgeMs to
            // start replying before duplicating an idempotent request
            // to the next shard (any worker can serve any trace; only
            // cache warmth is shard-local). The duplicate goes on a
            // fresh connection so a hedge never desynchronizes the
            // cached per-shard upstream.
            if (cfg.hedgeMs != 0 && cfg.workers > 1 &&
                isIdempotentRequest(request.type)) {
                struct pollfd pfd = {up, POLLIN, 0};
                int rc;
                do {
                    rc = ::poll(&pfd, 1,
                                static_cast<int>(std::min<uint64_t>(
                                    cfg.hedgeMs, 3600 * 1000)));
                } while (rc < 0 && errno == EINTR);
                if (rc == 0) {
                    const unsigned hedgeShard =
                        (shard_idx + 1) % cfg.workers;
                    bool hedgeReady = false;
                    {
                        std::lock_guard<std::mutex> lock(shardsMu);
                        hedgeReady = shards[hedgeShard].state ==
                                         ShardHealth::Ready &&
                                     shards[hedgeShard].pid > 0;
                    }
                    int hfd =
                        hedgeReady
                            ? connectWorker(workerSocketPath(hedgeShard))
                            : -1;
                    if (hfd >= 0 &&
                        !writeAllFd(hfd, frame, frame_len, 5000).ok()) {
                        ::close(hfd);
                        hfd = -1;
                    }
                    if (hfd >= 0) {
                        registerConnFd(hfd);
                        fleetHedges().inc();
                        // Race the two legs; the first whole reply
                        // wins, a leg whose stream breaks drops out.
                        std::vector<uint8_t> reply;
                        FrameHeader rh;
                        bool primaryAlive = true;
                        bool hedgeAlive = true;
                        bool hedgeWon = false;
                        bool have = false;
                        while (primaryAlive || hedgeAlive) {
                            struct pollfd legs[2];
                            nfds_t n = 0;
                            if (primaryAlive)
                                legs[n++] = {up, POLLIN, 0};
                            if (hedgeAlive)
                                legs[n++] = {hfd, POLLIN, 0};
                            do {
                                rc = ::poll(legs, n, -1);
                            } while (rc < 0 && errno == EINTR);
                            if (rc < 0)
                                break;
                            const bool fromPrimary =
                                primaryAlive && legs[0].fd == up &&
                                legs[0].revents != 0;
                            if (readWholeFrame(fromPrimary ? up : hfd,
                                               &reply, &rh, -1)) {
                                have = true;
                                hedgeWon = !fromPrimary;
                                break;
                            }
                            if (fromPrimary) {
                                unregisterConnFd(up);
                                ::close(up);
                                up = -1;
                                primaryAlive = false;
                            } else {
                                unregisterConnFd(hfd);
                                ::close(hfd);
                                hfd = -1;
                                hedgeAlive = false;
                            }
                        }
                        if (have) {
                            if (hedgeWon) {
                                fleetHedgeWins().inc();
                                if (primaryAlive) {
                                    sendCancelFrame(up, request_id);
                                    unregisterConnFd(up);
                                    ::close(up);
                                    up = -1;
                                }
                                // The winning hedge connection is
                                // clean (its one request answered);
                                // cache it for its own shard when the
                                // slot is free.
                                if (upstreams[hedgeShard] < 0) {
                                    upstreams[hedgeShard] = hfd;
                                } else {
                                    unregisterConnFd(hfd);
                                    ::close(hfd);
                                }
                            } else if (hedgeAlive) {
                                sendCancelFrame(hfd, request_id);
                                unregisterConnFd(hfd);
                                ::close(hfd);
                            }
                            fleetRouted().inc();
                            return writeAllFd(client_fd, reply.data(),
                                              reply.size(), 5000)
                                .ok();
                        }
                        if (hedgeAlive && hfd >= 0) {
                            unregisterConnFd(hfd);
                            ::close(hfd);
                        }
                        if (!primaryAlive)
                            break;   // both legs died: UNAVAILABLE
                        // Primary survived; fall through to the
                        // normal blocking read below.
                    }
                }
                // rc > 0: the primary started replying inside the
                // hedge window — no hedge needed.
            }

            uint8_t head[kFrameHeaderBytes];
            FrameHeader rh;
            if (!readExactFd(up, head, sizeof(head)).ok() ||
                !parseFrameHeader(head, sizeof(head), &rh).ok()) {
                unregisterConnFd(up);
                ::close(up);
                up = -1;
                break;   // worker died mid-request: UNAVAILABLE
            }
            std::vector<uint8_t> reply(kFrameHeaderBytes +
                                       rh.payloadLen);
            std::memcpy(reply.data(), head, kFrameHeaderBytes);
            if (rh.payloadLen > 0 &&
                !readExactFd(up, reply.data() + kFrameHeaderBytes,
                             rh.payloadLen)
                     .ok()) {
                unregisterConnFd(up);
                ::close(up);
                up = -1;
                break;
            }
            fleetRouted().inc();
            return writeAllFd(client_fd, reply.data(), reply.size(),
                              5000)
                .ok();
        }
        retryAfterMs = cfg.backoffBaseMs;
    }

    fleetUnavailable().inc();
    ServeReply reply;
    reply.type = MessageType::Error;
    reply.code = WireCode::Unavailable;
    reply.message = "shard " + std::to_string(shard_idx) +
                    " is unavailable (worker down or degraded); "
                    "retry after the hint";
    reply.retryAfterMs = static_cast<uint32_t>(
        std::min<uint64_t>(retryAfterMs == 0 ? cfg.backoffBaseMs
                                             : retryAfterMs,
                           60000));
    return sendRouterReply(client_fd, reply, request_id);
}

void
FleetSupervisor::serveConn(int client_fd, uint64_t conn_id)
{
    std::vector<int> upstreams(cfg.workers, -1);

    for (;;) {
        uint8_t head[kFrameHeaderBytes];
        if (!readExactFd(client_fd, head, sizeof(head)).ok())
            break;   // client done (EOF) or drain shutdown
        // Deadline clock for this hop starts when the frame starts
        // arriving; a slow-dribbling sender spends its own budget.
        const auto recvT0 = std::chrono::steady_clock::now();
        FrameHeader header;
        Status st = parseFrameHeader(head, sizeof(head), &header);
        if (!st.ok()) {
            ServeReply err;
            err.type = MessageType::Error;
            err.code = wireCodeFor(st);
            err.message = st.str();
            sendRouterReply(client_fd, err, 0);
            break;   // unsynchronizable stream
        }
        std::vector<uint8_t> frame(kFrameHeaderBytes +
                                   header.payloadLen);
        std::memcpy(frame.data(), head, kFrameHeaderBytes);
        if (header.payloadLen > 0 &&
            !readExactFd(client_fd, frame.data() + kFrameHeaderBytes,
                         header.payloadLen)
                 .ok())
            break;

        st = verifyFramePayload(header,
                                frame.data() + kFrameHeaderBytes);
        if (!st.ok()) {
            ServeReply err;
            err.type = MessageType::Error;
            err.code = WireCode::CorruptData;
            err.message = st.str();
            sendRouterReply(client_fd, err, header.requestId);
            break;
        }

        const MessageType type = static_cast<MessageType>(header.type);
        if (!isRequestType(type)) {
            ServeReply err;
            err.type = MessageType::Error;
            err.code = WireCode::InvalidArgument;
            err.message = std::string("unexpected message type: ") +
                          messageTypeName(type);
            sendRouterReply(client_fd, err, header.requestId);
            break;
        }

        // The supervisor answers the control plane itself: liveness,
        // introspection, and per-shard readiness must keep working
        // when every worker is down.
        if (type == MessageType::Ping) {
            ServeReply reply;
            reply.type = MessageType::PingReply;
            reply.serverInfo =
                "bpnsp-serve-v1 fleet workers=" +
                std::to_string(cfg.workers);
            if (!sendRouterReply(client_fd, reply, header.requestId))
                break;
            continue;
        }
        if (type == MessageType::Stats) {
            ServeReply reply;
            reply.type = MessageType::StatsReply;
            reply.statsJson = obs::renderStatsSnapshotJson();
            if (!sendRouterReply(client_fd, reply, header.requestId))
                break;
            continue;
        }
        if (type == MessageType::Health) {
            static obs::Counter &healthRequests =
                obs::counter("serve.health_requests");
            healthRequests.inc();
            ServeReply reply;
            reply.type = MessageType::HealthReply;
            for (const ShardStatus &s : shardStatuses()) {
                ShardHealth row;
                row.shard = s.shard;
                row.state = s.state;
                row.pid = static_cast<uint64_t>(s.pid);
                row.restarts = s.restarts;
                row.deaths = s.deaths;
                reply.shards.push_back(row);
            }
            // Enrich each ready row with the worker's own queue
            // depth and estimated queued work, via a short bounded
            // probe of its Health — a wedged worker times out and
            // keeps its zeros rather than stalling the control plane.
            for (ShardHealth &row : reply.shards) {
                if (row.state != ShardHealth::Ready || row.pid == 0)
                    continue;
                const int wfd = connectWorker(
                    workerSocketPath(row.shard));
                if (wfd < 0)
                    continue;
                ServeRequest probe;
                probe.type = MessageType::Health;
                std::vector<uint8_t> pframe;
                std::vector<uint8_t> rframe;
                FrameHeader rh;
                if (encodeFrame(MessageType::Health, 1,
                                encodeRequestPayload(probe), &pframe)
                        .ok() &&
                    writeAllFd(wfd, pframe.data(), pframe.size(), 500)
                        .ok() &&
                    readWholeFrame(wfd, &rframe, &rh, 500)) {
                    ServeReply wreply;
                    if (decodeReplyPayload(
                            static_cast<MessageType>(rh.type),
                            rframe.data() + kFrameHeaderBytes,
                            rh.payloadLen, &wreply)
                            .ok() &&
                        wreply.type == MessageType::HealthReply &&
                        !wreply.shards.empty()) {
                        row.queueDepth = wreply.shards[0].queueDepth;
                        row.queuedCostMs =
                            wreply.shards[0].queuedCostMs;
                    }
                }
                ::close(wfd);
            }
            if (!sendRouterReply(client_fd, reply, header.requestId))
                break;
            continue;
        }

        // Data plane: decode just enough to learn the owning shard,
        // then forward the original frame bytes untouched.
        ServeRequest request;
        st = decodeRequestPayload(type,
                                  frame.data() + kFrameHeaderBytes,
                                  header.payloadLen, &request);
        if (!st.ok()) {
            ServeReply err;
            err.type = MessageType::Error;
            err.code = wireCodeFor(st);
            err.message = st.str();
            if (!sendRouterReply(client_fd, err, header.requestId))
                break;
            continue;   // framing is still synchronized
        }
        const unsigned shard =
            fleetShardFor(request.workload, request.inputIdx,
                          request.instructions, cfg.workers);

        // Deadline propagation: spend this hop's elapsed time out of
        // the request's budget before the worker sees it. The
        // decremented deadline lives in the payload and the frame
        // checksum covers the payload, so a deadline-carrying frame
        // is re-encoded; deadline-free frames keep the verbatim path,
        // which also preserves trailing payload bytes a newer client
        // may have appended.
        const uint8_t *sendPtr = frame.data();
        size_t sendLen = frame.size();
        std::vector<uint8_t> reframed;
        if (request.deadlineMs != 0) {
            const uint64_t elapsedMs = static_cast<uint64_t>(
                std::chrono::duration_cast<std::chrono::milliseconds>(
                    std::chrono::steady_clock::now() - recvT0)
                    .count());
            if (elapsedMs >= request.deadlineMs) {
                fleetExpired().inc();
                ServeReply err;
                err.type = MessageType::Error;
                err.code = WireCode::DeadlineExceeded;
                err.message =
                    "deadline expired at the router (budget spent "
                    "before reaching a worker)";
                if (!sendRouterReply(client_fd, err,
                                     header.requestId))
                    break;
                continue;
            }
            request.deadlineMs -=
                static_cast<uint32_t>(elapsedMs);
            if (!encodeFrame(type, header.requestId,
                             encodeRequestPayload(request), &reframed)
                     .ok()) {
                ServeReply err;
                err.type = MessageType::Error;
                err.code = WireCode::Internal;
                err.message = "router failed to re-encode the "
                              "deadline-carrying frame";
                if (!sendRouterReply(client_fd, err,
                                     header.requestId))
                    break;
                continue;
            }
            sendPtr = reframed.data();
            sendLen = reframed.size();
        }
        if (!forwardToShard(shard, client_fd, sendPtr, sendLen,
                            upstreams, header.requestId, request))
            break;
    }

    for (const int up : upstreams) {
        if (up >= 0) {
            unregisterConnFd(up);
            ::close(up);
        }
    }
    unregisterConnFd(client_fd);
    ::close(client_fd);
    {
        std::lock_guard<std::mutex> lock(connMu);
        finishedConnIds.push_back(conn_id);
    }
    connCv.notify_all();
}

// --- lifecycle -------------------------------------------------------

std::vector<ShardStatus>
FleetSupervisor::shardStatuses()
{
    std::lock_guard<std::mutex> lock(shardsMu);
    std::vector<ShardStatus> out;
    out.reserve(shards.size());
    for (const Shard &s : shards) {
        ShardStatus status;
        status.shard = s.index;
        status.state = s.state;
        status.pid = static_cast<int>(s.pid);
        status.restarts = s.restarts;
        status.deaths = s.deaths;
        status.breakerTrips = s.breakerTrips;
        out.push_back(status);
    }
    return out;
}

void
FleetSupervisor::drain()
{
    if (!started || stopped)
        return;
    stopped = true;
    static obs::Counter &drains = obs::counter("serve.drains");
    drains.inc();

    // Phase 1: no new connections; the OS refuses further connect()s.
    acceptingFlag.store(false);
    ::shutdown(listenFd, SHUT_RDWR);
    ::close(listenFd);
    listenFd = -1;
    ::unlink(cfg.socketPath.c_str());
    if (acceptThread.joinable())
        acceptThread.join();

    // Phase 2: stop supervising FIRST, so the SIGTERMs below are not
    // mistaken for crashes and answered with respawns — this is also
    // what makes "drain while a respawn is in flight" safe: the
    // pending respawn simply never happens.
    quitFlag.store(true);
    if (monitorThread.joinable())
        monitorThread.join();

    // Phase 3: bounded grace for in-flight connections, then force
    // the stragglers closed (shutdown() unblocks their reads).
    {
        std::unique_lock<std::mutex> lock(connMu);
        connCv.wait_for(
            lock, std::chrono::milliseconds(cfg.drainGraceMs), [this] {
                return connThreads.size() == finishedConnIds.size();
            });
        for (const int fd : connFds)
            ::shutdown(fd, SHUT_RDWR);
    }
    for (;;) {
        std::map<uint64_t, std::thread> threads;
        {
            std::lock_guard<std::mutex> lock(connMu);
            threads.swap(connThreads);
            finishedConnIds.clear();
        }
        if (threads.empty())
            break;
        for (auto &[id, t] : threads)
            t.join();
    }

    // Phase 4: fan the drain out to the workers — SIGTERM runs each
    // worker's own graceful drain — and reap them, escalating to
    // SIGKILL only if a worker ignores the drain past the grace.
    std::vector<pid_t> live;
    {
        std::lock_guard<std::mutex> lock(shardsMu);
        for (Shard &shard : shards) {
            if (shard.pid > 0) {
                ::kill(shard.pid, SIGTERM);
                live.push_back(shard.pid);
            }
            shard.state = ShardHealth::Respawning;
        }
    }
    const uint64_t deadline = steadyMs() + cfg.drainGraceMs;
    for (const pid_t pid : live) {
        for (;;) {
            int wstatus = 0;
            const pid_t got = ::waitpid(pid, &wstatus, WNOHANG);
            if (got == pid || (got < 0 && errno == ECHILD))
                break;
            if (steadyMs() >= deadline) {
                warn("fleet: worker pid ", pid,
                     " ignored the drain; killing");
                ::kill(pid, SIGKILL);
                ::waitpid(pid, &wstatus, 0);
                break;
            }
            ::poll(nullptr, 0, 10);
        }
    }

    {
        std::lock_guard<std::mutex> lock(shardsMu);
        for (Shard &shard : shards) {
            shard.pid = 0;
            ::unlink(workerSocketPath(shard.index).c_str());
            ::unlink(heartbeatPath(shard.index).c_str());
        }
    }
    inform("fleet: drained (", cfg.workers, " worker(s) stopped)");
}

} // namespace bpnsp::serve
