#include "serve/server.hpp"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <iomanip>
#include <utility>

#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <sstream>

#include "analysis/branch_stats.hpp"
#include "analysis/h2p.hpp"
#include "analysis/target_stats.hpp"
#include "bp/factory.hpp"
#include "bp/sim.hpp"
#include "core/runner.hpp"
#include "faultsim/faultsim.hpp"
#include "obs/metrics.hpp"
#include "obs/report.hpp"
#include "obs/trace.hpp"
#include "synth/workload.hpp"
#include "util/logging.hpp"
#include "workloads/suite.hpp"

namespace bpnsp::serve {

namespace {

/** Request-size sanity bound: longer traces are refused up front. */
constexpr uint64_t kMaxServeInstructions = 2000000000ull;

/** Reply-size bound on BranchStats rows (frames are <= 16 MiB). */
constexpr uint32_t kMaxBranchRows = 65536;

/** poll() tick so quit/drain flags are noticed without wire traffic. */
constexpr int kPollTimeoutMs = 200;

obs::Counter &
serveRequests()
{
    static obs::Counter &c = obs::counter("serve.requests");
    return c;
}

obs::Counter &
serveAccepted()
{
    static obs::Counter &c = obs::counter("serve.accepted");
    return c;
}

obs::Counter &
serveRejected()
{
    static obs::Counter &c = obs::counter("serve.rejected");
    return c;
}

obs::Counter &
serveCompleted()
{
    static obs::Counter &c = obs::counter("serve.completed");
    return c;
}

obs::Counter &
serveFramesCorrupt()
{
    static obs::Counter &c = obs::counter("serve.frames_corrupt");
    return c;
}

obs::Gauge &
queueDepthGauge()
{
    static obs::Gauge &g = obs::gauge("serve.queue_depth");
    return g;
}

obs::Counter &
serveShed()
{
    static obs::Counter &c = obs::counter("serve.shed");
    return c;
}

obs::Counter &
serveExpired()
{
    static obs::Counter &c = obs::counter("serve.expired");
    return c;
}

obs::Counter &
serveCancels()
{
    static obs::Counter &c = obs::counter("serve.cancels");
    return c;
}

/**
 * Cost-model op classes. Ping/Stats/Health answer on the io thread
 * and never reach the scheduler, so only the four queued types need a
 * slot; anything unexpected shares the materialize slot (it is the
 * most conservative prior).
 */
unsigned
costClassFor(MessageType type)
{
    switch (type) {
      case MessageType::Simulate:
        return 0;
      case MessageType::BranchStats:
        return 1;
      case MessageType::H2p:
        return 2;
      default:
        return 3;   // Materialize and anything unexpected
    }
}

/**
 * The two scheduler priorities. BranchStats is the one interactive op
 * that actually queues (Ping/Stats/Health answer inline): operators
 * poll it while the batch classes grind, so it must not wait behind
 * them.
 */
bool
isInteractiveQueued(MessageType type)
{
    return type == MessageType::BranchStats;
}

/** Deficit-round-robin quantum (scaled by cfg.clientWeight). */
constexpr uint64_t kDrrQuantumNs = 10ull * 1000 * 1000;

/** Cold-path cost multipliers over the warm per-unit EWMA. */
constexpr uint64_t kColdOpenFactor = 2;   ///< open + full verify pass
constexpr uint64_t kColdGenFactor = 8;    ///< full trace generation

/** EWMA refinement only kicks in once a class has real evidence. */
constexpr uint64_t kCostModelMinSamples = 8;

/**
 * Per-request-type latency histograms (accept-to-reply), alongside
 * the aggregate serve.request_ns: a slow BranchStats must not hide
 * inside a million fast Simulates. Handles resolved once.
 */
obs::Histogram &
requestNsForType(MessageType type)
{
    static obs::Histogram &sim =
        obs::histogram("serve.request_ns.simulate");
    static obs::Histogram &branchStats =
        obs::histogram("serve.request_ns.branch_stats");
    static obs::Histogram &h2p = obs::histogram("serve.request_ns.h2p");
    static obs::Histogram &materialize =
        obs::histogram("serve.request_ns.materialize");
    static obs::Histogram &other =
        obs::histogram("serve.request_ns.other");
    switch (type) {
      case MessageType::Simulate:
        return sim;
      case MessageType::BranchStats:
        return branchStats;
      case MessageType::H2p:
        return h2p;
      case MessageType::Materialize:
        return materialize;
      default:
        return other;
    }
}

/**
 * Server-assigned trace ids: unique within the process, monotonically
 * increasing, never 0 (0 means "unassigned" on the wire). Every
 * request gets one — even rejected ones, so a RESOURCE_EXHAUSTED
 * reply is still correlatable with the admission decision.
 */
uint64_t
allocTraceId()
{
    static std::atomic<uint64_t> next{1};
    return next.fetch_add(1, std::memory_order_relaxed);
}

uint64_t
nowNs()
{
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

/**
 * Write all of `len` bytes to a non-blocking socket through the
 * shared EINTR-audited helper (protocol.hpp). The 5 s bound is per
 * wait-for-writability: a peer that stays unwritable that long is
 * wedged and the connection is abandoned — but a signal interrupting
 * the wait (SIGCHLD fires routinely in fleet mode) restarts it
 * instead of being mistaken for a wedge, which used to drop the
 * connection.
 */
bool
sendAll(int fd, const uint8_t *bytes, size_t len)
{
    return writeAllFd(fd, bytes, len, /*poll_timeout_ms=*/5000).ok();
}

void
setNonBlocking(int fd)
{
    // Sockets come from accept()/socket() moments earlier; fcntl on
    // them cannot meaningfully fail, but stay defensive.
    const int flags = ::fcntl(fd, F_GETFL, 0);
    if (flags >= 0)
        ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

} // namespace

/** One live client connection (owned by the io thread). */
struct ServeServer::Conn
{
    int fd = -1;
    uint64_t id = 0;
    uint64_t peer = 0;            ///< fair-share identity (see admit)
    std::vector<uint8_t> inbuf;   ///< unparsed bytes, frame-aligned
    std::mutex writeMu;           ///< serializes reply frames
    std::atomic<bool> open{true};
};

/** One admitted request waiting for (or owned by) a worker. */
struct ServeServer::Pending
{
    std::shared_ptr<Conn> conn;
    uint64_t requestId = 0;
    ServeRequest request;
    uint64_t enqueuedNs = 0;
    uint64_t traceId = 0;

    // Scheduler view, stamped at admission.
    uint64_t peer = 0;
    bool interactive = false;
    uint64_t costNs = 0;      ///< estimated execute time
    uint64_t costUnits = 1;   ///< work units behind the estimate
    bool costWarm = true;     ///< reader was open (EWMA-grade sample)
    uint64_t deadlineNs = 0;  ///< absolute expiry (0 = none)
    std::shared_ptr<CancelToken> cancel;   ///< chained to stopToken
};

/** One client's slice of the admission queue (keyed by peer). */
struct ServeServer::PeerQueue
{
    uint64_t peer = 0;
    std::deque<Pending> interactive;
    std::deque<Pending> batch;
    uint64_t costNs = 0;      ///< estimated work queued here
    uint64_t deficitNs = 0;   ///< DRR credit (batch class)

    bool empty() const { return interactive.empty() && batch.empty(); }
};

ServeServer::ServeServer(ServeConfig config)
    : cfg(std::move(config))
{
    if (cfg.workers == 0)
        cfg.workers = 1;
    if (cfg.maxBatch == 0)
        cfg.maxBatch = 1;
    if (cfg.queueDepth == 0)
        cfg.queueDepth = 1;
    if (cfg.maxOpenReaders == 0)
        cfg.maxOpenReaders = 1;
    if (cfg.clientWeight == 0)
        cfg.clientWeight = 1;
    if (cfg.shedPolicy != "tail")
        cfg.shedPolicy = "heaviest";
    // Cost-model priors, ns per work unit (x16 fixed point): replay
    // classes start near the observed ~10 ns/record of a warm mmap'd
    // replay; materialize is bookkeeping once the reader is open.
    // All refined online from warm executions.
    costNsPerUnitX16[0].store(10 * 16);   // simulate
    costNsPerUnitX16[1].store(14 * 16);   // branch-stats (per-branch map)
    costNsPerUnitX16[2].store(14 * 16);   // h2p (sliced stats)
    costNsPerUnitX16[3].store(2 * 16);    // materialize (reader ready)
}

ServeServer::~ServeServer()
{
    if (started && !stopped)
        stop();
}

Status
ServeServer::start()
{
    if (started)
        return Status::invalidArgument("server already started");
    if (cfg.socketPath.empty())
        return Status::invalidArgument("serve: socket path required");
    if (cfg.traceCacheDir.empty())
        return Status::invalidArgument(
            "serve: trace cache directory required");

    struct sockaddr_un addr;
    if (cfg.socketPath.size() >= sizeof(addr.sun_path))
        return Status::invalidArgument(
            "serve: socket path too long: " + cfg.socketPath);

    // The server and the canonical runWorkloadTrace() cold path must
    // agree on the corpus directory, or generated traces would publish
    // somewhere the server never looks.
    setTraceCacheDir(cfg.traceCacheDir);
    cache = std::make_unique<TraceCache>(cfg.traceCacheDir);
    workloadsCatalog = allWorkloads();

    // UNIX-domain listener. The bound name is daemon-owned: a stale
    // socket file from a previous (dead) instance is removed, exactly
    // like the trace cache GCs its orphaned lockfiles.
    const int ufd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (ufd < 0)
        return Status::ioError(std::string("serve: socket(): ") +
                               std::strerror(errno));
    std::memset(&addr, 0, sizeof(addr));
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, cfg.socketPath.c_str(),
                 sizeof(addr.sun_path) - 1);
    ::unlink(cfg.socketPath.c_str());
    if (::bind(ufd, reinterpret_cast<struct sockaddr *>(&addr),
               sizeof(addr)) != 0 ||
        ::listen(ufd, 128) != 0) {
        const Status st = Status::ioError(
            "serve: bind/listen on " + cfg.socketPath + ": " +
            std::strerror(errno));
        ::close(ufd);
        return st;
    }
    listenFds.push_back(ufd);

    // Optional TCP listener, loopback only: serving is a host-local
    // facility, not a network-exposed one.
    if (cfg.tcpPort != 0) {
        const int tfd = ::socket(AF_INET, SOCK_STREAM, 0);
        if (tfd < 0)
            return Status::ioError(
                std::string("serve: tcp socket(): ") +
                std::strerror(errno));
        const int one = 1;
        ::setsockopt(tfd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
        struct sockaddr_in tin;
        std::memset(&tin, 0, sizeof(tin));
        tin.sin_family = AF_INET;
        tin.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
        tin.sin_port =
            htons(static_cast<uint16_t>(cfg.tcpPort < 0 ? 0
                                                        : cfg.tcpPort));
        if (::bind(tfd, reinterpret_cast<struct sockaddr *>(&tin),
                   sizeof(tin)) != 0 ||
            ::listen(tfd, 128) != 0) {
            const Status st = Status::ioError(
                "serve: tcp bind/listen on 127.0.0.1:" +
                std::to_string(cfg.tcpPort) + ": " +
                std::strerror(errno));
            ::close(tfd);
            ::close(ufd);
            listenFds.clear();
            return st;
        }
        socklen_t tlen = sizeof(tin);
        ::getsockname(tfd, reinterpret_cast<struct sockaddr *>(&tin),
                      &tlen);
        tcpPortBound = ntohs(tin.sin_port);
        listenFds.push_back(tfd);
    }

    if (::pipe(wakePipe) != 0)
        return Status::ioError(std::string("serve: pipe(): ") +
                               std::strerror(errno));
    setNonBlocking(wakePipe[0]);
    setNonBlocking(wakePipe[1]);

    started = true;
    acceptingFlag.store(true);
    quitFlag.store(false);
    ioThread = std::thread([this] { ioLoop(); });
    workerThreads.reserve(cfg.workers);
    for (unsigned i = 0; i < cfg.workers; ++i)
        workerThreads.emplace_back([this] { workerLoop(); });

    static obs::Gauge &workersGauge = obs::gauge("serve.workers");
    workersGauge.set(static_cast<double>(cfg.workers));
    inform("serving on ", cfg.socketPath,
           tcpPortBound != 0
               ? " and 127.0.0.1:" + std::to_string(tcpPortBound)
               : std::string(),
           " (", cfg.workers, " workers, queue depth ",
           cfg.queueDepth, ")");
    return Status();
}

void
ServeServer::drain()
{
    if (!started || stopped)
        return;
    static obs::Counter &drains = obs::counter("serve.drains");
    drains.inc();

    // Phase 1: stop admitting. The io thread keeps running so replies
    // to in-flight requests still go out, but every listener closes
    // and every newly parsed request is refused.
    acceptingFlag.store(false);
    {
        const uint8_t byte = 1;
        [[maybe_unused]] ssize_t n = ::write(wakePipe[1], &byte, 1);
    }

    // Phase 2: wait for the queue to empty and in-flight work to
    // finish — the whole point of a graceful drain.
    {
        std::unique_lock<std::mutex> lock(queueMu);
        idleCv.wait(lock, [this] {
            return queuedCount == 0 && inFlight == 0;
        });
    }

    // Phase 3: tear the machinery down.
    quitFlag.store(true);
    queueCv.notify_all();
    {
        const uint8_t byte = 1;
        [[maybe_unused]] ssize_t n = ::write(wakePipe[1], &byte, 1);
    }
    for (std::thread &t : workerThreads)
        t.join();
    workerThreads.clear();
    if (ioThread.joinable())
        ioThread.join();

    for (const int fd : listenFds)
        ::close(fd);
    listenFds.clear();
    ::unlink(cfg.socketPath.c_str());
    ::close(wakePipe[0]);
    ::close(wakePipe[1]);
    wakePipe[0] = wakePipe[1] = -1;

    {
        std::lock_guard<std::mutex> lock(readersMu);
        readers.clear();
        genMutexes.clear();
    }
    stopped = true;
}

void
ServeServer::stop()
{
    if (!started || stopped)
        return;
    // The hard cut: every in-flight request's token chains to this
    // one, so replay/generation loops unwind at their next poll; the
    // drain below then completes quickly.
    stopToken.requestCancel(CancelCause::User);
    drain();
}

// --- io thread -------------------------------------------------------

void
ServeServer::ioLoop()
{
    std::vector<struct pollfd> pfds;
    bool listenersClosed = false;
    while (!quitFlag.load()) {
        if (!acceptingFlag.load() && !listenersClosed) {
            // Drain phase 1: close the listeners so new connect()s are
            // refused by the OS while existing conns keep their
            // replies coming.
            for (const int fd : listenFds)
                ::close(fd);
            listenFds.clear();
            ::unlink(cfg.socketPath.c_str());
            listenersClosed = true;
        }

        pfds.clear();
        pfds.push_back({wakePipe[0], POLLIN, 0});
        for (const int fd : listenFds)
            pfds.push_back({fd, POLLIN, 0});
        const size_t connBase = pfds.size();
        for (const auto &conn : conns)
            pfds.push_back({conn->fd, POLLIN, 0});

        const int ready =
            ::poll(pfds.data(), pfds.size(), kPollTimeoutMs);
        if (ready < 0) {
            if (errno == EINTR)
                continue;
            warn("serve: poll(): ", std::strerror(errno));
            break;
        }

        if ((pfds[0].revents & POLLIN) != 0) {
            uint8_t sink[64];
            while (::read(wakePipe[0], sink, sizeof(sink)) > 0) {
            }
        }

        for (size_t i = 1; i < connBase; ++i) {
            if ((pfds[i].revents & POLLIN) != 0)
                acceptOne(pfds[i].fd);
        }

        // Snapshot: readConn may close (and remove) connections.
        std::vector<std::shared_ptr<Conn>> readable;
        for (size_t i = connBase; i < pfds.size(); ++i) {
            if ((pfds[i].revents & (POLLIN | POLLHUP | POLLERR)) != 0)
                readable.push_back(conns[i - connBase]);
        }
        for (const auto &conn : readable)
            readConn(conn);
    }

    // Shutdown: close every connection. Workers are already gone (the
    // drain joins them before the io thread), so nobody writes.
    for (const auto &conn : conns)
        closeConn(conn);
    conns.clear();
}

void
ServeServer::acceptOne(int listen_fd)
{
    static obs::Counter &connections =
        obs::counter("serve.connections");
    static obs::Counter &acceptFailures =
        obs::counter("serve.accept_failures");
    static uint64_t nextConnId = 1;

    obs::Span span("serve.accept");
    const int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd < 0) {
        if (errno != EAGAIN && errno != EWOULDBLOCK &&
            errno != ECONNABORTED && errno != EINTR)
            warn("serve: accept(): ", std::strerror(errno));
        return;
    }
    if (faultsim::evaluate("serve.accept.fail")) {
        // Injected transient accept failure: the client sees a
        // connection that opens and immediately closes, exactly like
        // an accept-queue overflow under real load.
        acceptFailures.inc();
        ::close(fd);
        return;
    }
    setNonBlocking(fd);
    auto conn = std::make_shared<Conn>();
    conn->fd = fd;
    conn->id = nextConnId++;
    // Fair-share identity: the peer *process* (SO_PEERCRED pid on
    // UNIX-domain sockets), so one client opening many connections is
    // still one client to the scheduler. TCP loopback peers (no
    // credentials) fall back to per-connection identity.
    struct ucred cred;
    socklen_t credLen = sizeof(cred);
    if (::getsockopt(fd, SOL_SOCKET, SO_PEERCRED, &cred, &credLen) ==
            0 &&
        cred.pid > 0)
        conn->peer = static_cast<uint64_t>(cred.pid);
    else
        conn->peer = conn->id;
    conns.push_back(std::move(conn));
    connections.inc();
}

void
ServeServer::readConn(const std::shared_ptr<Conn> &conn)
{
    static obs::Counter &connResets = obs::counter("serve.conn_resets");

    bool eof = false;
    uint8_t chunk[16384];
    while (conn->open.load()) {
        const ssize_t n = ::recv(conn->fd, chunk, sizeof(chunk), 0);
        if (n > 0) {
            conn->inbuf.insert(conn->inbuf.end(), chunk, chunk + n);
            continue;
        }
        if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK))
            break;
        if (n < 0 && errno == EINTR)
            continue;
        eof = true;   // orderly close or reset, either way: done
        break;
    }

    if (conn->open.load())
        parseFrames(conn);

    if (eof && conn->open.load()) {
        // A mid-frame disconnect leaves a partial frame in inbuf;
        // that is the peer's prerogative, not a protocol error.
        if (!conn->inbuf.empty())
            connResets.inc();
        closeConn(conn);
    } else if (!conn->open.load()) {
        closeConn(conn);
    }
}

void
ServeServer::parseFrames(const std::shared_ptr<Conn> &conn)
{
    while (conn->open.load() &&
           conn->inbuf.size() >= kFrameHeaderBytes) {
        FrameHeader header;
        Status st = parseFrameHeader(conn->inbuf.data(),
                                     conn->inbuf.size(), &header);
        if (!st.ok()) {
            // Bad magic / unsupported version / oversized length
            // prefix: the stream cannot be resynchronized, so answer
            // once and hang up.
            serveFramesCorrupt().inc();
            sendError(conn, 0, wireCodeFor(st), st.str());
            conn->open.store(false);
            return;
        }
        const size_t frameBytes = kFrameHeaderBytes + header.payloadLen;
        if (conn->inbuf.size() < frameBytes)
            return;   // wait for the rest of the frame

        std::vector<uint8_t> payload(
            conn->inbuf.begin() + kFrameHeaderBytes,
            conn->inbuf.begin() + frameBytes);
        conn->inbuf.erase(conn->inbuf.begin(),
                          conn->inbuf.begin() + frameBytes);

        if (faultsim::evaluate("serve.frame.corrupt")) {
            // Injected wire corruption: flip one payload bit (or the
            // expected checksum itself for empty payloads) so the
            // verify below must catch it.
            if (!payload.empty()) {
                const uint64_t draw =
                    faultsim::payloadDraw("serve.frame.corrupt");
                payload[draw % payload.size()] ^=
                    static_cast<uint8_t>(1u << (draw % 8));
            } else {
                header.payloadCrc ^= 1u;
            }
        }

        st = verifyFramePayload(header, payload.data());
        if (!st.ok()) {
            serveFramesCorrupt().inc();
            sendError(conn, header.requestId, WireCode::CorruptData,
                      st.str());
            conn->open.store(false);
            return;
        }

        const MessageType type =
            static_cast<MessageType>(header.type);
        if (!isRequestType(type)) {
            sendError(conn, header.requestId,
                      WireCode::InvalidArgument,
                      std::string("unexpected message type: ") +
                          messageTypeName(type));
            conn->open.store(false);
            return;
        }

        ServeRequest request;
        st = decodeRequestPayload(type, payload.data(),
                                  payload.size(), &request);
        if (!st.ok()) {
            // The checksum passed, so this is a malformed-but-intact
            // payload: reply and keep the connection (the framing is
            // still synchronized).
            serveRequests().inc();
            serveRejected().inc();
            sendError(conn, header.requestId, wireCodeFor(st),
                      st.str());
            continue;
        }

        if (type == MessageType::Ping) {
            // Pings answer from the io thread: they are the liveness
            // probe, so they must not queue behind real work.
            serveRequests().inc();
            serveAccepted().inc();
            ServeReply reply;
            reply.type = MessageType::PingReply;
            reply.traceId = allocTraceId();
            reply.serverInfo =
                "bpnsp-serve-v1 workers=" +
                std::to_string(cfg.workers) +
                " queue=" + std::to_string(cfg.queueDepth);
            sendReply(conn, header.requestId, reply);
            serveCompleted().inc();
            continue;
        }

        if (type == MessageType::Health) {
            // Health answers from the io thread like Ping: it is the
            // probe a router or operator uses to decide whether this
            // endpoint can take traffic, so it must work under full
            // load and mid-drain. A single-process server is its own
            // one-shard fleet: one row, ready, never restarted.
            static obs::Counter &healthRequests =
                obs::counter("serve.health_requests");
            serveRequests().inc();
            serveAccepted().inc();
            healthRequests.inc();
            ServeReply reply;
            reply.type = MessageType::HealthReply;
            reply.traceId = allocTraceId();
            ShardHealth row;
            row.shard = 0;
            row.state = ShardHealth::Ready;
            row.pid = static_cast<uint64_t>(::getpid());
            {
                // Overload view: what is queued plus what the workers
                // hold, in estimated milliseconds of execute time —
                // the number a router or operator needs to pick (or
                // avoid) this worker.
                std::lock_guard<std::mutex> lock(queueMu);
                row.queueDepth = static_cast<uint32_t>(queuedCount);
                row.queuedCostMs =
                    (queuedCostNs + inflightCostNs) / 1000000ull;
            }
            reply.shards.push_back(row);
            sendReply(conn, header.requestId, reply);
            serveCompleted().inc();
            continue;
        }

        if (type == MessageType::Cancel) {
            // Cancel answers from the io thread: its whole purpose is
            // to reclaim capacity (hedge losers), so it must not wait
            // behind the very queue it is pruning.
            serveRequests().inc();
            serveAccepted().inc();
            handleCancel(conn, header, request);
            serveCompleted().inc();
            continue;
        }

        if (type == MessageType::Stats) {
            // Live introspection answers from the io thread, exactly
            // like Ping: it never queues behind real work, never
            // touches the worker pool, and keeps answering while a
            // drain waits for in-flight requests — which is precisely
            // when an operator wants to watch the queue empty.
            static obs::Counter &statsRequests =
                obs::counter("serve.stats_requests");
            serveRequests().inc();
            serveAccepted().inc();
            statsRequests.inc();
            ServeReply reply;
            reply.type = MessageType::StatsReply;
            reply.traceId = allocTraceId();
            {
                obs::ScopedTraceId traceScope(reply.traceId);
                obs::Span span("serve.stats");
                reply.statsJson = obs::renderStatsSnapshotJson();
            }
            sendReply(conn, header.requestId, reply);
            serveCompleted().inc();
            continue;
        }

        admit(conn, header, std::move(request));
    }
}

/**
 * Estimate a request's execute cost: work units (trace records the
 * handler will touch) × the op class's observed ns-per-unit EWMA × a
 * cold/warm multiplier from the reader-cache state. The estimate is
 * deliberately cheap (one map lookup, at worst one stat()) because it
 * runs on the io thread for every request.
 */
void
ServeServer::estimateCost(Pending *pending)
{
    const ServeRequest &r = pending->request;
    uint64_t units = r.instructions;
    if (r.type == MessageType::Simulate)
        units = r.count != 0 ? r.count
                             : (r.instructions > r.first
                                    ? r.instructions - r.first
                                    : 1);
    if (units == 0)
        units = 1;

    // Cold/warm: an open reader replays immediately; an on-disk entry
    // pays open + a full verify pass; a missing entry pays full trace
    // generation. The digest needs the workload's input — resolvable
    // only for known workloads, so unknown names (rejected later by
    // validateRequest) just count as warm.
    uint64_t mult = 1;
    bool warm = true;
    const Workload *w = findServableWorkload(r.workload);
    if (w != nullptr && r.inputIdx < w->inputs.size()) {
        const WorkloadInput &input = w->inputs.at(r.inputIdx);
        const TraceCacheKey key{w->name, input.label, input.seed,
                                r.instructions};
        const std::string digest = traceCacheDigest(key);
        bool open = false;
        {
            std::lock_guard<std::mutex> lock(readersMu);
            open = readers.find(digest) != readers.end();
        }
        if (!open) {
            warm = false;
            mult = cache->contains(key) ? kColdOpenFactor
                                        : kColdGenFactor;
            // Cold cost scales with the whole trace (generation and
            // verify read every record), not just the slice.
            units = std::max(units, r.instructions);
        }
    }

    const unsigned cls = costClassFor(r.type);
    const uint64_t nsPerUnitX16 = costNsPerUnitX16[cls].load(
        std::memory_order_relaxed);
    pending->costUnits = units;
    pending->costWarm = warm;
    pending->costNs = units * nsPerUnitX16 / 16 * mult;
    if (pending->costNs == 0)
        pending->costNs = 1000;   // floor: nothing is free
}

/** Fold a warm observation into the op class's ns-per-unit EWMA. */
void
ServeServer::noteObservedCost(MessageType type, uint64_t units,
                              uint64_t exec_ns, bool warm)
{
    if (!warm || units == 0)
        return;   // cold samples measure generation, not the class
    const unsigned cls = costClassFor(type);
    const uint64_t obsX16 = exec_ns * 16 / units;
    uint64_t cur = costNsPerUnitX16[cls].load(
        std::memory_order_relaxed);
    // alpha = 1/8: stable under noisy per-request timings but adapts
    // within a few dozen requests. Lost races just drop a sample.
    const uint64_t next = std::max<uint64_t>(
        1, cur - cur / 8 + obsX16 / 8);
    costNsPerUnitX16[cls].compare_exchange_weak(
        cur, next, std::memory_order_relaxed);
    costSamples[cls].fetch_add(1, std::memory_order_relaxed);
}

ServeServer::PeerQueue &
ServeServer::peerQueueFor(uint64_t peer)
{
    for (PeerQueue &pq : peerQueues) {
        if (pq.peer == peer)
            return pq;
    }
    PeerQueue pq;
    pq.peer = peer;
    peerQueues.push_back(std::move(pq));
    return peerQueues.back();
}

bool
ServeServer::overCapacityLocked(uint64_t arriving_cost_ns) const
{
    if (queuedCount + 1 > cfg.queueDepth)
        return true;
    if (cfg.maxInflightCostMs != 0 &&
        queuedCostNs + inflightCostNs + arriving_cost_ns >
            cfg.maxInflightCostMs * 1000000ull)
        return true;
    return false;
}

/**
 * Retry-after hint: the moment the backlog could plausibly have
 * drained through the worker pool. A floor on client backoff, never a
 * guarantee.
 */
uint32_t
ServeServer::retryAfterMsLocked() const
{
    const uint64_t backlogNs =
        (queuedCostNs + inflightCostNs) / cfg.workers;
    uint64_t ms = backlogNs / 1000000ull;
    if (ms < 1)
        ms = 1;
    if (ms > 30000)
        ms = 30000;
    return static_cast<uint32_t>(ms);
}

/** Undo one queued request's accounting (already out of its deque). */
void
ServeServer::removeQueuedLocked(const Pending &pending)
{
    PeerQueue &pq = peerQueueFor(pending.peer);
    pq.costNs -= std::min(pq.costNs, pending.costNs);
    queuedCostNs -= std::min(queuedCostNs, pending.costNs);
    --queuedCount;
}

void
ServeServer::updateQueueGaugesLocked()
{
    static obs::Gauge &interactiveDepth =
        obs::gauge("serve.queue_depth.interactive");
    static obs::Gauge &batchDepth =
        obs::gauge("serve.queue_depth.batch");
    static obs::Gauge &inflightCost =
        obs::gauge("serve.inflight_cost_ms");
    size_t ni = 0;
    size_t nb = 0;
    for (const PeerQueue &pq : peerQueues) {
        ni += pq.interactive.size();
        nb += pq.batch.size();
    }
    queueDepthGauge().set(static_cast<double>(queuedCount));
    interactiveDepth.set(static_cast<double>(ni));
    batchDepth.set(static_cast<double>(nb));
    inflightCost.set(
        static_cast<double>((queuedCostNs + inflightCostNs) /
                            1000000ull));
}

void
ServeServer::admit(const std::shared_ptr<Conn> &conn,
                   const FrameHeader &header, ServeRequest request)
{
    serveRequests().inc();
    const uint64_t traceId = allocTraceId();

    if (!acceptingFlag.load()) {
        serveRejected().inc();
        sendError(conn, header.requestId, WireCode::Busy,
                  "server is draining", traceId);
        return;
    }

    Pending p;
    p.conn = conn;
    p.requestId = header.requestId;
    p.request = std::move(request);
    p.enqueuedNs = nowNs();
    p.traceId = traceId;
    p.peer = conn->peer;
    p.interactive = isInteractiveQueued(p.request.type);
    p.cancel = std::make_shared<CancelToken>(&stopToken);
    estimateCost(&p);
    if (p.request.deadlineMs != 0)
        p.deadlineNs =
            p.enqueuedNs +
            static_cast<uint64_t>(p.request.deadlineMs) * 1000000ull;

    std::vector<Pending> shed;   // victims, replied to after unlock
    bool shedSelf = false;
    uint32_t retryAfterMs = 0;
    {
        std::lock_guard<std::mutex> lock(queueMu);
        retryAfterMs = retryAfterMsLocked();
        while (overCapacityLocked(p.costNs)) {
            if (cfg.shedPolicy == "tail") {
                shedSelf = true;
                break;
            }
            // Heaviest-first: the client holding the most estimated
            // queued work absorbs the shed — counting the arrival as
            // part of its own client's backlog, so a lone client
            // overflowing the queue still sheds its own newest work
            // (which is the arrival itself).
            PeerQueue *heavy = nullptr;
            uint64_t heavyCost = 0;
            uint64_t ownCost = p.costNs;
            for (PeerQueue &pq : peerQueues) {
                if (pq.peer == p.peer) {
                    ownCost += pq.costNs;
                    continue;
                }
                if (!pq.empty() &&
                    (heavy == nullptr || pq.costNs > heavyCost)) {
                    heavy = &pq;
                    heavyCost = pq.costNs;
                }
            }
            if (heavy == nullptr || heavyCost <= ownCost) {
                // The arriving client *is* the heaviest (or no other
                // client holds anything): newest-first means the
                // arrival itself is the victim.
                shedSelf = true;
                break;
            }
            // Shed the heaviest client's newest batch work first;
            // its interactive tail only when it queued nothing else.
            std::deque<Pending> &victims = heavy->batch.empty()
                                               ? heavy->interactive
                                               : heavy->batch;
            Pending victim = std::move(victims.back());
            victims.pop_back();
            removeQueuedLocked(victim);
            shed.push_back(std::move(victim));
        }
        if (!shedSelf) {
            PeerQueue &pq = peerQueueFor(p.peer);
            pq.costNs += p.costNs;
            queuedCostNs += p.costNs;
            ++queuedCount;
            (p.interactive ? pq.interactive : pq.batch)
                .push_back(std::move(p));
            updateQueueGaugesLocked();
        }
    }

    for (const Pending &victim : shed) {
        serveRejected().inc();
        serveShed().inc();
        sendError(victim.conn, victim.requestId,
                  WireCode::ResourceExhausted,
                  "shed under overload (heaviest client, newest "
                  "work first); retry after the hint",
                  victim.traceId, retryAfterMs);
    }
    if (shedSelf) {
        serveRejected().inc();
        serveShed().inc();
        sendError(conn, header.requestId,
                  WireCode::ResourceExhausted,
                  "admission queue full (" +
                      std::to_string(cfg.queueDepth) +
                      " requests); retry with backoff",
                  traceId, retryAfterMs);
        return;
    }
    queueCv.notify_one();
}

/**
 * Best-effort cancellation of an earlier request on this connection.
 * Queued target: shed before it costs a worker anything, CANCELLED
 * reply to the original id. In-flight solo target: its token fires
 * and the handler unwinds at its next poll. Batch members and
 * already-answered ids report cancelFound = 0.
 */
void
ServeServer::handleCancel(const std::shared_ptr<Conn> &conn,
                          const FrameHeader &header,
                          const ServeRequest &request)
{
    bool haveQueued = false;
    bool found = false;
    Pending victim;
    {
        std::lock_guard<std::mutex> lock(queueMu);
        for (PeerQueue &pq : peerQueues) {
            for (std::deque<Pending> *dq :
                 {&pq.interactive, &pq.batch}) {
                for (auto it = dq->begin(); it != dq->end(); ++it) {
                    if (it->conn->id == conn->id &&
                        it->requestId == request.cancelTargetId) {
                        victim = std::move(*it);
                        dq->erase(it);
                        removeQueuedLocked(victim);
                        updateQueueGaugesLocked();
                        haveQueued = true;
                        found = true;
                        break;
                    }
                }
                if (haveQueued)
                    break;
            }
            if (haveQueued)
                break;
        }
        if (!haveQueued) {
            auto it = inflightTokens.find(
                {conn->id, request.cancelTargetId});
            if (it != inflightTokens.end()) {
                it->second->requestCancel(CancelCause::User);
                found = true;
            }
        }
        if (haveQueued && queuedCount == 0 && inFlight == 0)
            idleCv.notify_all();
    }

    if (haveQueued) {
        serveRejected().inc();
        sendError(victim.conn, victim.requestId, WireCode::Cancelled,
                  "cancelled by the client before execution",
                  victim.traceId);
    }
    if (found)
        serveCancels().inc();

    ServeReply reply;
    reply.type = MessageType::CancelReply;
    reply.traceId = allocTraceId();
    reply.cancelFound = found ? 1 : 0;
    sendReply(conn, header.requestId, reply);
}

// --- workers ---------------------------------------------------------

void
ServeServer::workerLoop()
{
    while (true) {
        std::vector<Pending> batch = popBatch();
        if (batch.empty())
            return;   // quit
        execute(std::move(batch));
    }
}

/**
 * Deadline sweep (queueMu held): move every queued request that can
 * no longer finish in time into `expired` — expiry replies go out
 * before the request costs a worker anything. "Cannot finish" means
 * the absolute deadline already passed, or (once the op class's cost
 * model has real evidence) the remaining budget is smaller than the
 * estimated execute time.
 */
void
ServeServer::sweepExpiredLocked(std::vector<Pending> *expired)
{
    const uint64_t now = nowNs();
    for (PeerQueue &pq : peerQueues) {
        for (std::deque<Pending> *dq : {&pq.interactive, &pq.batch}) {
            for (auto it = dq->begin(); it != dq->end();) {
                bool late = false;
                if (it->deadlineNs != 0) {
                    if (now >= it->deadlineNs) {
                        late = true;
                    } else if (costSamples[costClassFor(
                                   it->request.type)]
                                       .load(
                                           std::memory_order_relaxed) >=
                                   kCostModelMinSamples &&
                               it->deadlineNs - now < it->costNs) {
                        late = true;
                    }
                }
                if (!late) {
                    ++it;
                    continue;
                }
                Pending victim = std::move(*it);
                it = dq->erase(it);
                removeQueuedLocked(victim);
                expired->push_back(std::move(victim));
            }
        }
    }
    if (!expired->empty())
        updateQueueGaugesLocked();
}

/**
 * Scheduler selection (queueMu held): any interactive request first
 * (round-robin across clients), else batch work by weighted deficit
 * round robin — a client may dequeue when its deficit covers the
 * head's estimated cost; every pass over the rotation earns each
 * waiting client one quantum × weight. Clients that go idle leave
 * the rotation and their deficit resets.
 */
bool
ServeServer::popNextLocked(Pending *out)
{
    // Drop idle peers so the rotation only visits clients with work
    // (and an idle client cannot bank deficit).
    for (auto it = peerQueues.begin(); it != peerQueues.end();) {
        if (it->empty() && it->costNs == 0)
            it = peerQueues.erase(it);
        else
            ++it;
    }
    if (peerQueues.empty() || queuedCount == 0)
        return false;
    const size_t n = peerQueues.size();

    for (size_t i = 0; i < n; ++i) {
        PeerQueue &pq = peerQueues[(rrInteractive + i) % n];
        if (pq.interactive.empty())
            continue;
        rrInteractive = (rrInteractive + i + 1) % n;
        *out = std::move(pq.interactive.front());
        pq.interactive.pop_front();
        removeQueuedLocked(*out);
        return true;
    }

    const uint64_t quantum = kDrrQuantumNs * cfg.clientWeight;
    for (;;) {
        bool anyBatch = false;
        for (size_t i = 0; i < n; ++i) {
            PeerQueue &pq = peerQueues[rrBatch % n];
            rrBatch = (rrBatch + 1) % n;
            if (pq.batch.empty())
                continue;
            anyBatch = true;
            if (pq.deficitNs < pq.batch.front().costNs) {
                pq.deficitNs += quantum;
                continue;
            }
            pq.deficitNs -= pq.batch.front().costNs;
            *out = std::move(pq.batch.front());
            pq.batch.pop_front();
            removeQueuedLocked(*out);
            return true;
        }
        if (!anyBatch)
            return false;
        // Every waiting client earned a quantum this pass; the next
        // pass (or one soon after) can afford its head.
    }
}

/**
 * Pop the next request per the fair-share scheduler plus — when it is
 * a Simulate with no deadline — every queued Simulate for the *same
 * trace slice* (any client), so one replay pass serves them all.
 * Requests with deadlines run solo: batching would couple their
 * cancellation. Expired requests found while popping are answered
 * DEADLINE_EXCEEDED here, before any worker time is spent on them.
 */
std::vector<ServeServer::Pending>
ServeServer::popBatch()
{
    static obs::Histogram &batchSize =
        obs::histogram("serve.batch_size");
    static obs::Histogram &queueWait =
        obs::histogram("serve.queue_wait_ns");

    for (;;) {
        std::vector<Pending> batch;
        std::vector<Pending> expired;
        uint64_t formStartNs = 0;
        uint32_t retryAfterMs = 0;
        {
            std::unique_lock<std::mutex> lock(queueMu);
            queueCv.wait(lock, [this] {
                return quitFlag.load() || queuedCount > 0;
            });
            sweepExpiredLocked(&expired);
            retryAfterMs = retryAfterMsLocked();

            formStartNs = nowNs();
            Pending head;
            if (popNextLocked(&head)) {
                batch.push_back(std::move(head));

                // Copied, not referenced: the batch vector
                // reallocates as members join, which would invalidate
                // any reference into it.
                const ServeRequest headReq = batch.front().request;
                if (headReq.type == MessageType::Simulate &&
                    headReq.deadlineMs == 0) {
                    for (PeerQueue &pq : peerQueues) {
                        for (auto it = pq.batch.begin();
                             it != pq.batch.end() &&
                             batch.size() < cfg.maxBatch;) {
                            const ServeRequest &r = it->request;
                            const bool sameSlice =
                                r.type == MessageType::Simulate &&
                                r.deadlineMs == 0 &&
                                r.workload == headReq.workload &&
                                r.inputIdx == headReq.inputIdx &&
                                r.instructions ==
                                    headReq.instructions &&
                                r.first == headReq.first &&
                                r.count == headReq.count;
                            if (sameSlice) {
                                Pending member = std::move(*it);
                                it = pq.batch.erase(it);
                                removeQueuedLocked(member);
                                batch.push_back(std::move(member));
                            } else {
                                ++it;
                            }
                        }
                        if (batch.size() >= cfg.maxBatch)
                            break;
                    }
                }

                inFlight += static_cast<unsigned>(batch.size());
                for (const Pending &p : batch) {
                    inflightCostNs += p.costNs;
                    // Solo requests are individually cancellable; a
                    // multi-member batch shares one replay pass, so
                    // cancelling one member would fail the others.
                    if (batch.size() == 1)
                        inflightTokens[{p.conn->id, p.requestId}] =
                            p.cancel;
                }
                // serve.accepted counts requests handed to a worker:
                // queued work that is later shed, swept, or cancelled
                // was never accepted, keeping shed + accepted <=
                // requests additive.
                for (size_t i = 0; i < batch.size(); ++i)
                    serveAccepted().inc();
            }
            updateQueueGaugesLocked();
            if (queuedCount == 0 && inFlight == 0)
                idleCv.notify_all();
            if (batch.empty() && expired.empty() && quitFlag.load())
                return batch;
        }

        if (!expired.empty()) {
            const uint64_t sweepEndNs = nowNs();
            obs::emitSpan("serve.queue_sweep",
                          expired.front().traceId, formStartNs,
                          sweepEndNs > formStartNs
                              ? sweepEndNs - formStartNs
                              : 0);
            for (const Pending &p : expired) {
                serveRejected().inc();
                serveExpired().inc();
                sendError(p.conn, p.requestId,
                          WireCode::DeadlineExceeded,
                          "deadline expired in the admission queue "
                          "(estimated backlog exceeds the remaining "
                          "budget)",
                          p.traceId, retryAfterMs);
            }
        }
        if (batch.empty())
            continue;   // swept everything; wait for more work

        batchSize.observe(batch.size());
        const uint64_t now = nowNs();
        for (const Pending &p : batch) {
            const uint64_t wait =
                now > p.enqueuedNs ? now - p.enqueuedNs : 0;
            queueWait.observe(wait);
            // Retroactive span: the wait started on the io thread,
            // ended here. Recorded explicitly since no scope lived
            // across both.
            obs::emitSpan("serve.queue_wait", p.traceId, p.enqueuedNs,
                          wait);
        }
        if (batch.size() > 1)
            obs::emitSpan("serve.batch_form", batch.front().traceId,
                          formStartNs, now - formStartNs);
        return batch;
    }
}

void
ServeServer::execute(std::vector<Pending> batch)
{
    static obs::Counter &stalls = obs::counter("serve.worker_stalls");
    static obs::Histogram &execNs = obs::histogram("serve.exec_ns");
    static obs::Histogram &requestNs =
        obs::histogram("serve.request_ns");

    if (faultsim::evaluate("serve.worker.stall")) {
        // Injected worker stall: park this worker for a bounded,
        // cancellable moment. Under a drain the stop token cuts the
        // nap short, so a stalled pool can never hang shutdown.
        stalls.inc();
        CancelScope scope(stopToken);
        cancellableSleepMs(
            25 + faultsim::payloadDraw("serve.worker.stall") % 200);
    }

    const uint64_t execStartNs = nowNs();
    {
        // The batch executes under the head's trace id; spans from
        // the shared replay (chunk decode, cache lookups) attach
        // there, and each member still gets its own root
        // serve.request span below.
        obs::ScopedTraceId traceScope(batch.front().traceId);
        obs::Span span("serve.execute");
        if (batch.front().request.type == MessageType::Simulate) {
            executeSimulateBatch(batch);
        } else {
            // Non-simulate requests are popped solo. The request's
            // own token (registered in inflightTokens at pop) makes
            // it cancellable; the deadline is *absolute* from
            // admission, so queue wait already spent the budget —
            // the deadline-propagation contract at this hop.
            Pending &p = batch.front();
            CancelToken &token = *p.cancel;
            if (p.deadlineNs != 0) {
                const uint64_t now = nowNs();
                if (now >= p.deadlineNs)
                    token.requestCancel(CancelCause::Deadline);
                else
                    token.setDeadlineAfterMs(
                        (p.deadlineNs - now + 999999ull) / 1000000ull);
            }
            CancelScope scope(token);
            ServeReply reply;
            switch (p.request.type) {
              case MessageType::BranchStats:
                reply = executeBranchStats(p.request);
                break;
              case MessageType::H2p:
                reply = executeH2p(p.request);
                break;
              case MessageType::Materialize:
                reply = executeMaterialize(p.request);
                break;
              default:
                reply.type = MessageType::Error;
                reply.code = WireCode::Unimplemented;
                reply.message =
                    std::string("no handler for ") +
                    messageTypeName(p.request.type);
                break;
            }
            reply.traceId = p.traceId;
            sendReply(p.conn, p.requestId, reply);
        }
    }
    const uint64_t execEndNs = nowNs();
    const uint64_t execDurNs =
        execEndNs > execStartNs ? execEndNs - execStartNs : 0;
    execNs.observe(static_cast<double>(execDurNs));

    // Refine the cost model from what actually happened. Batch
    // members share one replay, so the whole batch's units back one
    // observation; cold executions measured generation, not the op
    // class, and are skipped inside.
    {
        uint64_t units = 0;
        bool warm = true;
        for (const Pending &p : batch) {
            units += p.costUnits;
            warm = warm && p.costWarm;
        }
        noteObservedCost(batch.front().request.type, units, execDurNs,
                         warm);
    }

    const uint64_t now = nowNs();
    for (const Pending &p : batch) {
        const uint64_t wall =
            now > p.enqueuedNs ? now - p.enqueuedNs : 0;
        requestNs.observe(wall);
        requestNsForType(p.request.type).observe(wall);
        // The root of each request's span tree: admission to reply.
        obs::emitSpan("serve.request", p.traceId, p.enqueuedNs, wall);
        if (cfg.slowMs != 0 &&
            wall >= static_cast<uint64_t>(cfg.slowMs) * 1000000ull)
            logSlowRequest(p, wall);
        serveCompleted().inc();
    }

    std::lock_guard<std::mutex> lock(queueMu);
    inFlight -= static_cast<unsigned>(batch.size());
    for (const Pending &p : batch) {
        inflightCostNs -= std::min(inflightCostNs, p.costNs);
        inflightTokens.erase({p.conn->id, p.requestId});
    }
    updateQueueGaugesLocked();
    if (queuedCount == 0 && inFlight == 0)
        idleCv.notify_all();
}

void
ServeServer::executeSimulateBatch(std::vector<Pending> &batch)
{
    static obs::Counter &batches = obs::counter("serve.batches");
    batches.inc();

    // Per-request validation first: an invalid member gets its error
    // reply and drops out without sinking the whole batch.
    std::vector<Pending *> live;
    const Workload *workload = nullptr;
    for (Pending &p : batch) {
        const Status st = validateRequest(p.request, &workload);
        if (!st.ok()) {
            sendError(p.conn, p.requestId, wireCodeFor(st), st.str(),
                      p.traceId);
            continue;
        }
        live.push_back(&p);
    }
    if (live.empty())
        return;

    // One token for the batch: members were only batched because none
    // carries a deadline, so a multi-member token exists only to
    // chain the server's hard stop (cancelling one member must not
    // fail the others). A solo simulate runs under its *own* token —
    // individually cancellable via Cancel — with its deadline armed
    // absolute from admission, so queue wait already spent budget.
    CancelToken batchToken(&stopToken);
    CancelToken *token = &batchToken;
    if (live.size() == 1) {
        token = live[0]->cancel.get();
        if (live[0]->deadlineNs != 0) {
            const uint64_t now = nowNs();
            if (now >= live[0]->deadlineNs)
                token->requestCancel(CancelCause::Deadline);
            else
                token->setDeadlineAfterMs(
                    (live[0]->deadlineNs - now + 999999ull) /
                    1000000ull);
        }
    }
    CancelScope scope(*token);

    const ServeRequest &head = live[0]->request;
    Status st;
    std::shared_ptr<TraceStoreReader> reader;
    {
        obs::Span span("serve.ensure_reader");
        reader = ensureReader(*workload, head, &st);
    }
    if (reader == nullptr) {
        for (Pending *p : live)
            sendError(p->conn, p->requestId, wireCodeFor(st),
                      st.str(), p->traceId);
        return;
    }

    const uint64_t first = head.first;
    const uint64_t count =
        head.count == 0 ? reader->count() - first : head.count;

    // One replay pass over the shared mmap'd store drives every
    // member's predictor sim; each sim sees the identical stream a
    // direct in-process run would deliver.
    std::vector<std::unique_ptr<BranchPredictor>> predictors;
    std::vector<std::unique_ptr<PredictorSim>> sims;
    FanoutSink fanout;
    for (Pending *p : live) {
        predictors.push_back(makePredictor(p->request.predictor));
        sims.push_back(std::make_unique<PredictorSim>(
            *predictors.back(), /*collect_per_branch=*/false));
        fanout.add(sims.back().get());
    }

    {
        obs::Span span("serve.replay");
        st = reader->replayRange(first, count, fanout);
    }
    if (!st.ok()) {
        if (st.code() == StatusCode::CorruptData) {
            // The store changed under us (or a fault spec fired):
            // quarantine the entry so the next request regenerates it,
            // and make sure the stale mmap is dropped.
            const WorkloadInput &input =
                workload->inputs.at(head.inputIdx);
            const TraceCacheKey key{workload->name, input.label,
                                    input.seed, head.instructions};
            cache->quarantine(key, st.str());
            dropReader(traceCacheDigest(key));
        }
        for (Pending *p : live)
            sendError(p->conn, p->requestId, wireCodeFor(st),
                      st.str(), p->traceId);
        return;
    }
    fanout.onEnd();   // flush sim deltas into the bp.* counters

    obs::Span replySpan("serve.reply");
    for (size_t i = 0; i < live.size(); ++i) {
        ServeReply reply;
        reply.type = MessageType::SimulateReply;
        reply.traceId = live[i]->traceId;
        reply.delivered = count;
        reply.condExecs = sims[i]->condExecs();
        reply.condMispreds = sims[i]->condMispreds();
        reply.accuracyBits = doubleBits(sims[i]->accuracy());
        sendReply(live[i]->conn, live[i]->requestId, reply);
    }
}

ServeReply
ServeServer::executeBranchStats(const ServeRequest &request)
{
    ServeReply reply;
    reply.type = MessageType::BranchStatsReply;

    const Workload *workload = nullptr;
    Status st = validateRequest(request, &workload);
    if (st.ok()) {
        std::shared_ptr<TraceStoreReader> reader =
            ensureReader(*workload, request, &st);
        if (st.ok()) {
            std::unique_ptr<BranchPredictor> predictor =
                makePredictor(request.predictor);
            PredictorSim sim(*predictor, /*collect_per_branch=*/true);
            // The frontend rides the same replay pass so the target
            // columns are computed from exactly the records the
            // direction columns saw.
            FrontendModel fe((FrontendConfig()));
            FanoutSink fanout({&sim, &fe});
            st = reader->replay(fanout, 0);
            if (st.ok()) {
                reply.delivered = sim.instructions();
                reply.condExecs = sim.condExecs();
                reply.condMispreds = sim.condMispreds();
                for (const TargetClassRow &row : targetClassRows(fe))
                    reply.targetClasses.push_back(
                        {static_cast<uint8_t>(row.cls), row.execs,
                         row.targetMispreds});
                std::vector<BranchRow> rows;
                rows.reserve(sim.perBranch().size());
                for (const auto &[ip, c] : sim.perBranch())
                    rows.push_back({ip, c.execs, c.mispreds, c.taken});
                // Deterministic order: most-mispredicted first, IP
                // ascending on ties (the H2P-ranking convention).
                std::sort(rows.begin(), rows.end(),
                          [](const BranchRow &a, const BranchRow &b) {
                              if (a.mispreds != b.mispreds)
                                  return a.mispreds > b.mispreds;
                              return a.ip < b.ip;
                          });
                uint32_t keep = request.topK == 0 ? kMaxBranchRows
                                                 : request.topK;
                keep = std::min(keep, kMaxBranchRows);
                if (rows.size() > keep)
                    rows.resize(keep);
                reply.branches = std::move(rows);
            }
        }
    }
    if (!st.ok()) {
        reply.type = MessageType::Error;
        reply.code = wireCodeFor(st);
        reply.message = st.str();
    }
    return reply;
}

ServeReply
ServeServer::executeH2p(const ServeRequest &request)
{
    ServeReply reply;
    reply.type = MessageType::H2pReply;

    const Workload *workload = nullptr;
    Status st = validateRequest(request, &workload);
    if (st.ok()) {
        std::shared_ptr<TraceStoreReader> reader =
            ensureReader(*workload, request, &st);
        if (st.ok()) {
            const uint64_t sliceLen = request.sliceLength != 0
                                          ? request.sliceLength
                                          : request.instructions;
            std::unique_ptr<BranchPredictor> predictor =
                makePredictor(request.predictor);
            SlicedBranchStats stats(*predictor, sliceLen);
            st = reader->replay(stats, 0);
            if (st.ok()) {
                const H2pCriteria criteria =
                    H2pCriteria{}.scaledTo(sliceLen);
                const H2pSummary summary =
                    summarizeH2ps(stats, criteria);
                reply.h2pIps.assign(summary.allH2ps.begin(),
                                    summary.allH2ps.end());
                std::sort(reply.h2pIps.begin(), reply.h2pIps.end());
                reply.slices = stats.slices().size();
                reply.avgPerSliceBits =
                    doubleBits(summary.avgPerSlice);
                reply.avgMispredFractionBits =
                    doubleBits(summary.avgMispredFraction);
            }
        }
    }
    if (!st.ok()) {
        reply.type = MessageType::Error;
        reply.code = wireCodeFor(st);
        reply.message = st.str();
    }
    return reply;
}

ServeReply
ServeServer::executeMaterialize(const ServeRequest &request)
{
    ServeReply reply;
    reply.type = MessageType::MaterializeReply;

    const Workload *workload = nullptr;
    Status st = validateRequest(request, &workload);
    if (st.ok()) {
        std::shared_ptr<TraceStoreReader> reader =
            ensureReader(*workload, request, &st);
        if (st.ok()) {
            const WorkloadInput &input =
                workload->inputs.at(request.inputIdx);
            const TraceCacheKey key{workload->name, input.label,
                                    input.seed, request.instructions};
            reply.digest = traceCacheDigest(key);
            reply.records = reader->count();
            reply.path = cache->entryPath(key);
        }
    }
    if (!st.ok()) {
        reply.type = MessageType::Error;
        reply.code = wireCodeFor(st);
        reply.message = st.str();
    }
    return reply;
}

// --- shared helpers --------------------------------------------------

void
ServeServer::sendReply(const std::shared_ptr<Conn> &conn,
                       uint64_t request_id, const ServeReply &reply)
{
    if (!conn->open.load())
        return;
    const std::vector<uint8_t> payload = encodeReplyPayload(reply);
    std::vector<uint8_t> frame;
    const Status st =
        encodeFrame(reply.type, request_id, payload, &frame);
    if (!st.ok()) {
        // A reply too large for one frame (pathological topK): degrade
        // to an error the client can act on.
        sendError(conn, request_id, WireCode::Internal, st.str());
        return;
    }
    std::lock_guard<std::mutex> lock(conn->writeMu);
    if (!sendAll(conn->fd, frame.data(), frame.size()))
        conn->open.store(false);
}

void
ServeServer::sendError(const std::shared_ptr<Conn> &conn,
                       uint64_t request_id, WireCode code,
                       const std::string &message, uint64_t trace_id,
                       uint32_t retry_after_ms)
{
    if (!conn->open.load())
        return;
    ServeReply reply;
    reply.type = MessageType::Error;
    reply.code = code;
    reply.message = message;
    reply.traceId = trace_id;
    reply.retryAfterMs = retry_after_ms;
    const std::vector<uint8_t> payload = encodeReplyPayload(reply);
    std::vector<uint8_t> frame;
    if (!encodeFrame(MessageType::Error, request_id, payload, &frame)
             .ok())
        return;
    std::lock_guard<std::mutex> lock(conn->writeMu);
    if (!sendAll(conn->fd, frame.data(), frame.size()))
        conn->open.store(false);
}

void
ServeServer::logSlowRequest(const Pending &pending, uint64_t wall_ns)
{
    static obs::Counter &slow = obs::counter("serve.slow_requests");
    slow.inc();

    // Structured single-line record: greppable key=value pairs, span
    // offsets relative to admission so the line reads as a timeline.
    std::ostringstream os;
    os << "serve.slow_request trace_id=" << pending.traceId
       << " type=" << messageTypeName(pending.request.type)
       << " workload=" << pending.request.workload
       << " wall_ms=" << wall_ns / 1000000 << "." << std::setw(3)
       << std::setfill('0') << (wall_ns / 1000) % 1000;
    if (obs::TraceRecorder::instance().enabled()) {
        const std::vector<obs::SpanEvent> spans =
            obs::TraceRecorder::instance().spansFor(pending.traceId);
        os << " spans=[";
        for (size_t i = 0; i < spans.size(); ++i) {
            const obs::SpanEvent &e = spans[i];
            const uint64_t off = e.startNs >= pending.enqueuedNs
                                     ? e.startNs - pending.enqueuedNs
                                     : 0;
            os << (i != 0 ? " " : "") << e.name << "@+" << off / 1000
               << "us/" << e.durNs / 1000 << "us";
        }
        os << "]";
    }
    warn(os.str());
}

void
ServeServer::closeConn(const std::shared_ptr<Conn> &conn)
{
    conn->open.store(false);
    if (conn->fd >= 0) {
        ::close(conn->fd);
        conn->fd = -1;
    }
    conns.erase(std::remove(conns.begin(), conns.end(), conn),
                conns.end());
}

const Workload *
ServeServer::findServableWorkload(const std::string &name)
{
    for (const Workload &w : workloadsCatalog) {
        if (w.name == name)
            return &w;
    }
    // synth:<profile>:<seed> names resolve on demand — gracefully,
    // since the name is client-controlled and resolution reads a
    // profile file. A bad name or missing profile is the caller's
    // InvalidArgument, never a daemon fatal(). Resolved workloads are
    // cached: repeat requests skip the profile re-parse, and the
    // returned pointer stays valid for the server's lifetime.
    if (synth::isSynthName(name)) {
        std::lock_guard<std::mutex> lock(synthMu);
        auto it = synthCatalog.find(name);
        if (it != synthCatalog.end())
            return &it->second;
        Workload w;
        if (!synth::makeSynthWorkload(name, &w).ok())
            return nullptr;
        return &synthCatalog.emplace(name, std::move(w)).first->second;
    }
    return nullptr;
}

Status
ServeServer::validateRequest(const ServeRequest &request,
                             const Workload **workload_out)
{
    // findWorkload()/makePredictor() fatal() on unknown names — fine
    // for CLI typos, lethal for a daemon fed client bytes. Everything
    // client-controlled is validated here first.
    const Workload *w = findServableWorkload(request.workload);
    if (w == nullptr)
        return Status::invalidArgument("unknown workload: \"" +
                                       request.workload + "\"");
    *workload_out = w;
    if (request.inputIdx >= w->inputs.size())
        return Status::invalidArgument(
            "input index " + std::to_string(request.inputIdx) +
            " out of range for " + w->name + " (" +
            std::to_string(w->inputs.size()) + " inputs)");
    if (request.instructions == 0 ||
        request.instructions > kMaxServeInstructions)
        return Status::invalidArgument(
            "instruction count " +
            std::to_string(request.instructions) +
            " outside [1, " + std::to_string(kMaxServeInstructions) +
            "]");

    if (request.type == MessageType::Simulate ||
        request.type == MessageType::BranchStats ||
        request.type == MessageType::H2p) {
        static const std::vector<std::string> known =
            knownPredictorNames();
        if (std::find(known.begin(), known.end(), request.predictor) ==
            known.end())
            return Status::invalidArgument("unknown predictor: \"" +
                                           request.predictor + "\"");
    }

    if (request.type == MessageType::Simulate) {
        if (request.first > request.instructions)
            return Status::invalidArgument(
                "slice start " + std::to_string(request.first) +
                " past the " + std::to_string(request.instructions) +
                "-record trace");
        if (request.count != 0 &&
            request.first + request.count > request.instructions)
            return Status::invalidArgument(
                "slice [" + std::to_string(request.first) + ", " +
                std::to_string(request.first + request.count) +
                ") past the " + std::to_string(request.instructions) +
                "-record trace");
    }
    return Status();
}

std::shared_ptr<TraceStoreReader>
ServeServer::ensureReader(const Workload &workload,
                          const ServeRequest &request, Status *status)
{
    static obs::Counter &generated =
        obs::counter("serve.generated_traces");
    static obs::Gauge &openReaders = obs::gauge("serve.open_readers");

    const WorkloadInput &input = workload.inputs.at(request.inputIdx);
    const TraceCacheKey key{workload.name, input.label, input.seed,
                            request.instructions};
    const std::string digest = traceCacheDigest(key);

    {
        std::lock_guard<std::mutex> lock(readersMu);
        auto it = readers.find(digest);
        if (it != readers.end()) {
            it->second.lastUse = ++readerClock;
            *status = Status();
            return it->second.reader;
        }
    }

    // Serialize cold-open (and cold-generation) per digest so N
    // concurrent requests for the same trace cost one generation, not
    // N. A per-digest mutex, not the readers lock: generating takes
    // seconds and must not block unrelated digests.
    std::shared_ptr<std::mutex> gen;
    {
        std::lock_guard<std::mutex> lock(readersMu);
        auto &slot = genMutexes[digest];
        if (slot == nullptr)
            slot = std::make_shared<std::mutex>();
        gen = slot;
    }
    std::lock_guard<std::mutex> genLock(*gen);

    {
        std::lock_guard<std::mutex> lock(readersMu);
        auto it = readers.find(digest);
        if (it != readers.end()) {
            it->second.lastUse = ++readerClock;
            *status = Status();
            return it->second.reader;
        }
    }

    if (!cache->contains(key)) {
        // Cold trace: materialize through the canonical path, which
        // records and atomically publishes. No sinks — this pass
        // exists only to populate the corpus.
        runWorkloadTrace(workload, request.inputIdx, {},
                         request.instructions);
        const Status cancelled = currentCancelToken()->check();
        if (!cancelled.ok()) {
            *status = cancelled;
            return nullptr;
        }
        if (!cache->contains(key)) {
            // Possible under cross-process lock contention: the run
            // degraded to uncached and nothing was published.
            *status = Status::busy(
                "trace generation for " + digest +
                " did not publish (concurrent generator?); retry");
            return nullptr;
        }
        generated.inc();
    }

    Status openStatus;
    std::unique_ptr<TraceStoreReader> opened =
        TraceStoreReader::open(cache->entryPath(key), &openStatus);
    if (opened == nullptr) {
        if (openStatus.code() == StatusCode::CorruptData)
            cache->quarantine(key, openStatus.str());
        *status = openStatus;
        return nullptr;
    }
    if (opened->count() != request.instructions) {
        cache->quarantine(key,
                          "holds " + std::to_string(opened->count()) +
                              " records, want " +
                              std::to_string(request.instructions));
        *status = Status::corruptData("trace cache entry had " +
                                      std::to_string(opened->count()) +
                                      " records; quarantined, retry");
        return nullptr;
    }
    const Status verified = opened->verify();
    if (!verified.ok()) {
        // Quarantine is for damage only: a deadline or cancellation
        // during verify leaves a perfectly healthy entry behind.
        if (verified.code() == StatusCode::CorruptData)
            cache->quarantine(key, verified.str());
        *status = verified;
        return nullptr;
    }

    std::shared_ptr<TraceStoreReader> shared = std::move(opened);
    {
        std::lock_guard<std::mutex> lock(readersMu);
        readers[digest] = ReaderEntry{shared, ++readerClock};
        // LRU-cap the open mmaps; in-flight replays keep their reader
        // alive through their shared_ptr.
        while (readers.size() > cfg.maxOpenReaders) {
            auto victim = readers.begin();
            for (auto it = readers.begin(); it != readers.end(); ++it) {
                if (it->second.lastUse < victim->second.lastUse)
                    victim = it;
            }
            readers.erase(victim);
        }
        openReaders.set(static_cast<double>(readers.size()));
    }
    *status = Status();
    return shared;
}

void
ServeServer::dropReader(const std::string &digest)
{
    static obs::Gauge &openReaders = obs::gauge("serve.open_readers");
    std::lock_guard<std::mutex> lock(readersMu);
    readers.erase(digest);
    openReaders.set(static_cast<double>(readers.size()));
}

} // namespace bpnsp::serve
