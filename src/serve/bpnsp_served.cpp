/**
 * @file
 * bpnsp_served: the prediction-serving daemon. Binds a UNIX-domain
 * socket (TCP loopback optional behind --tcp-port), serves concurrent
 * bpnsp-serve-v1 requests — predictor simulation over trace slices,
 * branch stats, H2P lists, trace materialization — from a shared
 * on-disk trace corpus, and drains gracefully on SIGINT/SIGTERM:
 * in-flight requests finish, the listener closes immediately, and the
 * final run report (--metrics-out) captures the serve.* counters.
 *
 * Quickstart:
 *   bpnsp_served --socket=/tmp/bpnsp.sock --trace-cache=/tmp/traces &
 *   bpnsp_client --socket=/tmp/bpnsp.sock --op=simulate \
 *       --workload=mcf_like --predictor=gshare --instructions=200000
 *
 * Exit status: 0 on a clean drain (signal or --max-seconds), 1 when
 * the server could not start.
 */

#include <chrono>
#include <cstdio>
#include <thread>

#include "faultsim/faultsim.hpp"
#include "obs/metrics.hpp"
#include "obs/report.hpp"
#include "obs/trace.hpp"
#include "serve/server.hpp"
#include "tracestore/chunk_cache.hpp"
#include "util/cancel.hpp"
#include "util/logging.hpp"
#include "util/options.hpp"
#include "util/signals.hpp"

using namespace bpnsp;

int
main(int argc, char **argv)
{
    OptionParser opts(
        "Serve trace/simulation queries over a UNIX-domain socket.");
    opts.addString("socket", "bpnsp_served.sock",
                   "UNIX-domain socket path to bind");
    opts.addInt("tcp-port", 0,
                "also listen on 127.0.0.1:PORT (0 = off; -1 = "
                "OS-assigned, printed at startup)");
    opts.addInt("workers", 4, "worker threads");
    opts.addInt("queue-depth", 64,
                "admission queue bound; beyond it requests are "
                "rejected with RESOURCE_EXHAUSTED");
    opts.addInt("batch", 8,
                "max same-slice Simulate requests per replay pass");
    opts.addString("trace-cache", "",
                   "trace corpus directory (required; also "
                   "BPNSP_TRACE_CACHE)");
    opts.addInt("chunk-cache-mb", 64,
                "in-memory decoded-chunk LRU capacity (0 = off)");
    opts.addInt("max-open-readers", 32, "mmap'd store reader LRU cap");
    opts.addInt("max-seconds", 0,
                "self-terminate (drain) after N seconds (0 = run "
                "until signalled)");
    opts.addString("trace-dir", "",
                   "write rotating Chrome-trace span exports into this "
                   "directory (trace-<seq>.json, size-bounded)");
    opts.addInt("trace-files", 8, "rotated trace files kept");
    opts.addInt("trace-rotate-ms", 2000, "trace rotation period");
    opts.addInt("slow-ms", 0,
                "log requests slower than N ms with their span tree "
                "(0 = off)");
    opts.parse(argc, argv);
    obs::configureFromOptions(opts);
    faultsim::configureFromOptions(opts);

    // Shared signal discipline (util/signals.hpp): the first
    // SIGINT/SIGTERM fires the global cancel token and returns; we
    // notice below and drain. A second signal force-exits.
    signals::installGracefulDrain();

    std::string cacheDir = opts.getString("trace-cache");
    if (cacheDir.empty()) {
        if (const char *env = std::getenv("BPNSP_TRACE_CACHE"))
            cacheDir = env;
    }
    if (cacheDir.empty())
        fatal("bpnsp_served needs --trace-cache (or "
              "BPNSP_TRACE_CACHE): the corpus directory to serve");

    if (const int64_t mb = opts.getInt("chunk-cache-mb"); mb > 0)
        DecodedChunkCache::instance().setCapacityBytes(
            static_cast<size_t>(mb) * 1024 * 1024);

    serve::ServeConfig config;
    config.socketPath = opts.getString("socket");
    config.tcpPort = static_cast<int>(opts.getInt("tcp-port"));
    config.workers = static_cast<unsigned>(opts.getInt("workers"));
    config.queueDepth =
        static_cast<size_t>(opts.getInt("queue-depth"));
    config.maxBatch = static_cast<unsigned>(opts.getInt("batch"));
    config.traceCacheDir = cacheDir;
    config.maxOpenReaders =
        static_cast<size_t>(opts.getInt("max-open-readers"));
    config.slowMs = static_cast<uint32_t>(opts.getInt("slow-ms"));

    // Continuous span capture for a long-lived daemon: --trace-dir
    // rotates bounded exports (newest N kept) instead of the one-shot
    // at-exit file --trace-out writes.
    const std::string traceDir = opts.getString("trace-dir");
    if (!traceDir.empty()) {
        obs::TraceRecorder::instance().setEnabled(true);
        obs::TraceRecorder::instance().startRotation(
            traceDir, static_cast<size_t>(opts.getInt("trace-files")),
            static_cast<uint64_t>(opts.getInt("trace-rotate-ms")));
    }

    serve::ServeServer server(std::move(config));
    if (const Status st = server.start(); !st.ok()) {
        warn("bpnsp_served: ", st.str());
        return 1;
    }
    obs::Registry::instance().setRunField("serve_socket",
                                          server.config().socketPath);

    // Idle until the signal token fires or the wall budget expires.
    // The serving work itself happens on the server's own threads.
    const int64_t maxSeconds = opts.getInt("max-seconds");
    const auto start = std::chrono::steady_clock::now();
    while (!globalCancelToken().cancelled()) {
        if (maxSeconds > 0 &&
            std::chrono::steady_clock::now() - start >=
                std::chrono::seconds(maxSeconds))
            break;
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }

    inform("bpnsp_served: draining (in-flight requests finish, "
           "listener closed)");
    server.drain();
    if (!traceDir.empty())
        obs::TraceRecorder::instance().stopRotation();

    // The run report flushes through the --metrics-out atexit hook
    // (obs::configureFromOptions), after the drain has settled every
    // serve.* counter.
    std::printf("bpnsp_served: drained cleanly\n");
    return 0;
}
