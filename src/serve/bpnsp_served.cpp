/**
 * @file
 * bpnsp_served: the prediction-serving daemon. Binds a UNIX-domain
 * socket (TCP loopback optional behind --tcp-port), serves concurrent
 * bpnsp-serve-v1 requests — predictor simulation over trace slices,
 * branch stats, H2P lists, trace materialization — from a shared
 * on-disk trace corpus, and drains gracefully on SIGINT/SIGTERM:
 * in-flight requests finish, the listener closes immediately, and the
 * final run report (--metrics-out) captures the serve.* counters.
 *
 * Three modes share this binary:
 *
 *  - single process (default, --workers=0): one ServeServer, exactly
 *    the pre-fleet daemon.
 *  - fleet supervisor (--workers=N, N >= 1): fork+exec N copies of
 *    this binary as shard workers, route client frames to the owning
 *    shard, monitor/respawn crashed or wedged workers, degrade a
 *    crash-looping shard behind a circuit breaker (see
 *    serve/fleet.hpp). The supervisor owns the run report; workers
 *    write none.
 *  - fleet worker (--fleet-worker=IDX, spawned by a supervisor, not
 *    by hand): a single-process server on a private socket that also
 *    pulses a heartbeat file so the supervisor can tell wedged from
 *    busy, and hosts the serve.worker.{crash,wedge} failpoints for
 *    chaos drills.
 *
 * Quickstart:
 *   bpnsp_served --socket=/tmp/bpnsp.sock --trace-cache=/tmp/traces \
 *       --workers=4 &
 *   bpnsp_client --socket=/tmp/bpnsp.sock --op=simulate \
 *       --workload=mcf_like --predictor=gshare --instructions=200000
 *
 * Exit status: 0 on a clean drain (signal or --max-seconds), 1 when
 * the server could not start.
 */

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include "faultsim/faultsim.hpp"
#include "obs/metrics.hpp"
#include "obs/report.hpp"
#include "obs/trace.hpp"
#include "serve/fleet.hpp"
#include "serve/server.hpp"
#include "tracestore/chunk_cache.hpp"
#include "util/cancel.hpp"
#include "util/logging.hpp"
#include "util/options.hpp"
#include "util/signals.hpp"

using namespace bpnsp;

namespace {

/**
 * Path of this very binary, for the supervisor to exec workers from.
 * /proc/self/exe survives PATH-relative and cwd-relative launches;
 * argv[0] is the fallback.
 */
std::string
selfBinaryPath(const char *argv0)
{
    char buf[4096];
    const ssize_t n =
        ::readlink("/proc/self/exe", buf, sizeof(buf) - 1);
    if (n > 0) {
        buf[n] = '\0';
        return std::string(buf);
    }
    return std::string(argv0);
}

/** Create-or-touch `path` so its mtime is now. */
void
pulseHeartbeat(const std::string &path)
{
    if (::utimensat(AT_FDCWD, path.c_str(), nullptr, 0) == 0)
        return;
    if (FILE *f = std::fopen(path.c_str(), "w"))
        std::fclose(f);
}

/**
 * Worker idle loop: pulse the heartbeat and host the chaos
 * failpoints. serve.worker.crash (and the per-shard .w<i> variant)
 * exits abruptly, as a real crash would; serve.worker.wedge stops the
 * heartbeat and parks, so only the supervisor's stall watchdog can
 * clear it. Returns when the drain token fires.
 */
void
workerIdleLoop(const std::string &heartbeatPath, uint64_t heartbeatMs,
               int shard)
{
    const std::string crashShardPoint =
        "serve.worker.crash.w" + std::to_string(shard);
    const std::string wedgeShardPoint =
        "serve.worker.wedge.w" + std::to_string(shard);
    while (!globalCancelToken().cancelled()) {
        if (faultsim::evaluate("serve.worker.crash") ||
            faultsim::evaluate(crashShardPoint.c_str())) {
            warn("worker ", shard,
                 ": serve.worker.crash fired; dying");
            std::_Exit(3);
        }
        if (faultsim::evaluate("serve.worker.wedge") ||
            faultsim::evaluate(wedgeShardPoint.c_str())) {
            warn("worker ", shard,
                 ": serve.worker.wedge fired; heartbeat stops now");
            for (;;)
                std::this_thread::sleep_for(std::chrono::seconds(60));
        }
        pulseHeartbeat(heartbeatPath);
        std::this_thread::sleep_for(
            std::chrono::milliseconds(heartbeatMs));
    }
}

} // namespace

int
main(int argc, char **argv)
{
    OptionParser opts(
        "Serve trace/simulation queries over a UNIX-domain socket.");
    opts.addString("socket", "bpnsp_served.sock",
                   "UNIX-domain socket path to bind");
    opts.addInt("tcp-port", 0,
                "also listen on 127.0.0.1:PORT (0 = off; -1 = "
                "OS-assigned, printed at startup; single-process "
                "mode only)");
    opts.addInt("workers", 0,
                "fleet mode: fork N worker processes, each owning a "
                "shard of the trace-digest space (0 = single "
                "process)");
    opts.addInt("threads", 4, "simulation worker threads per process");
    opts.addInt("queue-depth", 64,
                "admission queue bound; beyond it requests are "
                "rejected with RESOURCE_EXHAUSTED");
    opts.addInt("max-inflight-cost", 0,
                "cost-aware admission bound: max estimated queued + "
                "in-flight work in ms of predicted execute time "
                "(0 = count-only admission)");
    opts.addInt("client-weight", 1,
                "fair-share quantum weight per client in the "
                "deficit-round-robin scheduler");
    opts.addString("shed-policy", "heaviest",
                   "overflow victim selection: 'heaviest' sheds the "
                   "newest work of the heaviest client; 'tail' always "
                   "rejects the arriving request");
    opts.addInt("hedge-ms", 0,
                "fleet router: duplicate an idempotent request to the "
                "next shard when the owning worker has not replied "
                "after N ms (0 = off)");
    opts.addInt("batch", 8,
                "max same-slice Simulate requests per replay pass");
    opts.addString("trace-cache", "",
                   "trace corpus directory (required; also "
                   "BPNSP_TRACE_CACHE)");
    opts.addInt("chunk-cache-mb", 64,
                "in-memory decoded-chunk LRU capacity (0 = off)");
    opts.addInt("max-open-readers", 32, "mmap'd store reader LRU cap");
    opts.addInt("max-seconds", 0,
                "self-terminate (drain) after N seconds (0 = run "
                "until signalled)");
    opts.addString("trace-dir", "",
                   "write rotating Chrome-trace span exports into this "
                   "directory (trace-<seq>.json, size-bounded)");
    opts.addInt("trace-files", 8, "rotated trace files kept");
    opts.addInt("trace-rotate-ms", 2000, "trace rotation period");
    opts.addInt("slow-ms", 0,
                "log requests slower than N ms with their span tree "
                "(0 = off)");
    // Fleet supervision knobs (--workers >= 1).
    opts.addInt("heartbeat-ms", 250, "worker liveness pulse period");
    opts.addInt("stall-ms", 5000,
                "heartbeat staleness that means a worker is wedged "
                "(it is SIGKILLed and respawned)");
    opts.addInt("respawn-backoff-ms", 100,
                "respawn backoff floor after a rapid worker death");
    opts.addInt("respawn-backoff-cap-ms", 2000, "respawn backoff cap");
    opts.addInt("breaker-deaths", 5,
                "deaths within --breaker-window-ms that trip a "
                "shard's circuit breaker (shard degrades to "
                "UNAVAILABLE instead of crash-looping)");
    opts.addInt("breaker-window-ms", 10000, "breaker death window");
    opts.addInt("breaker-cooldown-ms", 3000,
                "degraded time before a half-open probe respawn");
    opts.addInt("drain-grace-ms", 5000,
                "in-flight connection grace during a fleet drain");
    // Worker-mode plumbing (set by the supervisor, not by hand).
    opts.addInt("fleet-worker", -1,
                "internal: run as fleet shard worker IDX");
    opts.addString("heartbeat-file", "",
                   "internal: worker heartbeat file to pulse");
    opts.addInt("faults-bump", 0,
                "internal: decorrelate failpoint rng streams "
                "per worker (stream = seed + bump)");
    opts.parse(argc, argv);
    obs::configureFromOptions(opts);
    faultsim::configureFromOptions(opts);
    if (const int64_t bump = opts.getInt("faults-bump"); bump > 0)
        faultsim::setStreamBump(static_cast<uint64_t>(bump));

    // Shared signal discipline (util/signals.hpp): the first
    // SIGINT/SIGTERM fires the global cancel token and returns; we
    // notice below and drain. A second signal force-exits.
    signals::installGracefulDrain();

    std::string cacheDir = opts.getString("trace-cache");
    if (cacheDir.empty()) {
        if (const char *env = std::getenv("BPNSP_TRACE_CACHE"))
            cacheDir = env;
    }
    if (cacheDir.empty())
        fatal("bpnsp_served needs --trace-cache (or "
              "BPNSP_TRACE_CACHE): the corpus directory to serve");

    const int64_t fleetWorkers = opts.getInt("workers");
    const int64_t workerIdx = opts.getInt("fleet-worker");
    const int64_t maxSeconds = opts.getInt("max-seconds");

    // ---- fleet supervisor -------------------------------------------
    if (fleetWorkers > 0 && workerIdx < 0) {
        if (opts.getInt("tcp-port") != 0)
            fatal("--tcp-port is single-process only; the fleet "
                  "router speaks UNIX-domain sockets");
        serve::FleetConfig fleet;
        fleet.socketPath = opts.getString("socket");
        fleet.workers = static_cast<unsigned>(fleetWorkers);
        fleet.heartbeatMs =
            static_cast<uint64_t>(opts.getInt("heartbeat-ms"));
        fleet.stallMs = static_cast<uint64_t>(opts.getInt("stall-ms"));
        fleet.backoffBaseMs =
            static_cast<uint64_t>(opts.getInt("respawn-backoff-ms"));
        fleet.backoffCapMs = static_cast<uint64_t>(
            opts.getInt("respawn-backoff-cap-ms"));
        fleet.breakerDeaths =
            static_cast<unsigned>(opts.getInt("breaker-deaths"));
        fleet.breakerWindowMs =
            static_cast<uint64_t>(opts.getInt("breaker-window-ms"));
        fleet.breakerCooldownMs =
            static_cast<uint64_t>(opts.getInt("breaker-cooldown-ms"));
        fleet.drainGraceMs =
            static_cast<uint64_t>(opts.getInt("drain-grace-ms"));
        fleet.hedgeMs = static_cast<uint64_t>(opts.getInt("hedge-ms"));

        // Workers are fresh execs of this very binary; pass through
        // every per-process serving knob. The supervisor keeps
        // --metrics-out and --trace-dir for itself: one report, one
        // span stream, owned by the process that survives crashes.
        fleet.workerCommand = {
            selfBinaryPath(argv[0]),
            "--trace-cache=" + cacheDir,
            "--threads=" + std::to_string(opts.getInt("threads")),
            "--queue-depth=" +
                std::to_string(opts.getInt("queue-depth")),
            "--batch=" + std::to_string(opts.getInt("batch")),
            "--chunk-cache-mb=" +
                std::to_string(opts.getInt("chunk-cache-mb")),
            "--max-open-readers=" +
                std::to_string(opts.getInt("max-open-readers")),
            "--slow-ms=" + std::to_string(opts.getInt("slow-ms")),
            "--max-inflight-cost=" +
                std::to_string(opts.getInt("max-inflight-cost")),
            "--client-weight=" +
                std::to_string(opts.getInt("client-weight")),
            "--shed-policy=" + opts.getString("shed-policy"),
        };
        if (!opts.getString("faults").empty())
            fleet.workerCommand.push_back(
                "--faults=" + opts.getString("faults"));

        serve::FleetSupervisor supervisor(std::move(fleet));
        if (const Status st = supervisor.start(); !st.ok()) {
            warn("bpnsp_served: ", st.str());
            return 1;
        }
        obs::Registry::instance().setRunField(
            "serve_socket", supervisor.config().socketPath);
        obs::Registry::instance().setRunField(
            "fleet_workers",
            std::to_string(supervisor.config().workers));

        const auto start = std::chrono::steady_clock::now();
        while (!globalCancelToken().cancelled()) {
            if (maxSeconds > 0 &&
                std::chrono::steady_clock::now() - start >=
                    std::chrono::seconds(maxSeconds))
                break;
            std::this_thread::sleep_for(
                std::chrono::milliseconds(50));
        }
        inform("bpnsp_served: draining the fleet");
        supervisor.drain();
        std::printf("bpnsp_served: drained cleanly\n");
        return 0;
    }

    // ---- single process / fleet worker ------------------------------
    if (const int64_t mb = opts.getInt("chunk-cache-mb"); mb > 0)
        DecodedChunkCache::instance().setCapacityBytes(
            static_cast<size_t>(mb) * 1024 * 1024);

    serve::ServeConfig config;
    config.socketPath = opts.getString("socket");
    config.tcpPort = static_cast<int>(opts.getInt("tcp-port"));
    config.workers = static_cast<unsigned>(opts.getInt("threads"));
    config.queueDepth =
        static_cast<size_t>(opts.getInt("queue-depth"));
    config.maxBatch = static_cast<unsigned>(opts.getInt("batch"));
    config.traceCacheDir = cacheDir;
    config.maxOpenReaders =
        static_cast<size_t>(opts.getInt("max-open-readers"));
    config.slowMs = static_cast<uint32_t>(opts.getInt("slow-ms"));
    config.maxInflightCostMs =
        static_cast<uint64_t>(opts.getInt("max-inflight-cost"));
    config.clientWeight =
        static_cast<unsigned>(opts.getInt("client-weight"));
    config.shedPolicy = opts.getString("shed-policy");

    // Continuous span capture for a long-lived daemon: --trace-dir
    // rotates bounded exports (newest N kept) instead of the one-shot
    // at-exit file --trace-out writes.
    const std::string traceDir = opts.getString("trace-dir");
    if (!traceDir.empty()) {
        obs::TraceRecorder::instance().setEnabled(true);
        obs::TraceRecorder::instance().startRotation(
            traceDir, static_cast<size_t>(opts.getInt("trace-files")),
            static_cast<uint64_t>(opts.getInt("trace-rotate-ms")));
    }

    serve::ServeServer server(std::move(config));
    if (const Status st = server.start(); !st.ok()) {
        warn("bpnsp_served: ", st.str());
        return 1;
    }
    obs::Registry::instance().setRunField("serve_socket",
                                          server.config().socketPath);

    // Idle until the signal token fires or the wall budget expires.
    // The serving work itself happens on the server's own threads. A
    // fleet worker also pulses its heartbeat from this loop and hosts
    // the chaos failpoints.
    const std::string heartbeatFile = opts.getString("heartbeat-file");
    if (workerIdx >= 0 && !heartbeatFile.empty()) {
        workerIdleLoop(
            heartbeatFile,
            static_cast<uint64_t>(opts.getInt("heartbeat-ms")),
            static_cast<int>(workerIdx));
    } else {
        const auto start = std::chrono::steady_clock::now();
        while (!globalCancelToken().cancelled()) {
            if (maxSeconds > 0 &&
                std::chrono::steady_clock::now() - start >=
                    std::chrono::seconds(maxSeconds))
                break;
            std::this_thread::sleep_for(
                std::chrono::milliseconds(50));
        }
    }

    inform("bpnsp_served: draining (in-flight requests finish, "
           "listener closed)");
    server.drain();
    if (!traceDir.empty())
        obs::TraceRecorder::instance().stopRotation();

    // The run report flushes through the --metrics-out atexit hook
    // (obs::configureFromOptions), after the drain has settled every
    // serve.* counter.
    std::printf("bpnsp_served: drained cleanly\n");
    return 0;
}
