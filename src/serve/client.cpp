#include "serve/client.hpp"

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <chrono>
#include <cmath>
#include <cstring>
#include <thread>

#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "bp/factory.hpp"
#include "bp/sim.hpp"
#include "core/runner.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "tracestore/cache.hpp"
#include "tracestore/store.hpp"
#include "util/rng.hpp"
#include "workloads/suite.hpp"

namespace bpnsp::serve {

bool
isIdempotentRequest(MessageType type)
{
    switch (type) {
      case MessageType::Ping:
      case MessageType::Simulate:
      case MessageType::BranchStats:
      case MessageType::H2p:
      case MessageType::Stats:
      case MessageType::Health:
        // Pure reads: re-sending can never double-apply anything.
        return true;
      case MessageType::Materialize:
        // Content-addressed: generating the same trace twice publishes
        // the same digest to the same path.
        return true;
      case MessageType::Cancel:
        // Best-effort by contract: cancelling an already-finished (or
        // already-cancelled) request is a no-op with cancelFound = 0.
        return true;
      default:
        return false;
    }
}

bool
isRetryableCode(WireCode code)
{
    switch (code) {
      case WireCode::Unavailable:       // shard down; respawn coming
      case WireCode::Busy:              // draining / lock contention
      case WireCode::ResourceExhausted: // admission queue full
        return true;
      default:
        return false;
    }
}

// --- ServeClient -----------------------------------------------------

ServeClient::~ServeClient()
{
    close();
}

void
ServeClient::close()
{
    if (fd >= 0) {
        ::close(fd);
        fd = -1;
    }
}

Status
ServeClient::connectUnix(const std::string &socket_path)
{
    close();
    struct sockaddr_un addr;
    if (socket_path.size() >= sizeof(addr.sun_path))
        return Status::invalidArgument("socket path too long: " +
                                       socket_path);
    fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0)
        return Status::ioError(std::string("socket(): ") +
                               std::strerror(errno));
    std::memset(&addr, 0, sizeof(addr));
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, socket_path.c_str(),
                 sizeof(addr.sun_path) - 1);
    endpoint = Endpoint::Unix;
    endpointPath = socket_path;
    if (::connect(fd, reinterpret_cast<struct sockaddr *>(&addr),
                  sizeof(addr)) != 0) {
        const Status st = Status::ioError("connect(" + socket_path +
                                          "): " + std::strerror(errno));
        close();
        return st;
    }
    return Status();
}

Status
ServeClient::connectTcp(int port)
{
    close();
    fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0)
        return Status::ioError(std::string("socket(): ") +
                               std::strerror(errno));
    struct sockaddr_in addr;
    std::memset(&addr, 0, sizeof(addr));
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(static_cast<uint16_t>(port));
    endpoint = Endpoint::Tcp;
    endpointPort = port;
    if (::connect(fd, reinterpret_cast<struct sockaddr *>(&addr),
                  sizeof(addr)) != 0) {
        const Status st =
            Status::ioError("connect(127.0.0.1:" +
                            std::to_string(port) +
                            "): " + std::strerror(errno));
        close();
        return st;
    }
    return Status();
}

Status
ServeClient::reconnect()
{
    switch (endpoint) {
      case Endpoint::Unix:
        return connectUnix(endpointPath);
      case Endpoint::Tcp:
        return connectTcp(endpointPort);
      case Endpoint::None:
        break;
    }
    return Status::invalidArgument("client was never connected");
}

void
ServeClient::setRetryPolicy(const RetryPolicy &p)
{
    policy = p;
    if (policy.maxAttempts == 0)
        policy.maxAttempts = 1;
    jitterState = 0;   // re-seed from the new policy on next draw
}

Status
ServeClient::sendFrameFd(int dst_fd, MessageType type,
                         uint64_t request_id,
                         const std::vector<uint8_t> &payload)
{
    std::vector<uint8_t> frame;
    const Status st = encodeFrame(type, request_id, payload, &frame);
    if (!st.ok())
        return st;
    // Shared EINTR-audited write loop (protocol.hpp): partial sends
    // resume, signals restart, bytes are never dropped or recounted.
    return writeAllFd(dst_fd, frame.data(), frame.size());
}

Status
ServeClient::sendFrame(MessageType type, uint64_t request_id,
                       const std::vector<uint8_t> &payload)
{
    return sendFrameFd(fd, type, request_id, payload);
}

Status
ServeClient::recvReplyFd(int src_fd, uint64_t expect_id,
                         ServeReply *reply)
{
    uint8_t headerBytes[kFrameHeaderBytes];
    Status st = readExactFd(src_fd, headerBytes, sizeof(headerBytes));
    if (!st.ok())
        return st;
    FrameHeader header;
    st = parseFrameHeader(headerBytes, sizeof(headerBytes), &header);
    if (!st.ok())
        return st;
    std::vector<uint8_t> payload(header.payloadLen);
    if (header.payloadLen > 0) {
        st = readExactFd(src_fd, payload.data(), payload.size());
        if (!st.ok())
            return st;
    }
    st = verifyFramePayload(header, payload.data());
    if (!st.ok())
        return st;
    if (header.requestId != expect_id)
        return Status::corruptData(
            "reply id " + std::to_string(header.requestId) +
            " does not match request id " + std::to_string(expect_id));
    return decodeReplyPayload(static_cast<MessageType>(header.type),
                              payload.data(), payload.size(), reply);
}

Status
ServeClient::recvReply(uint64_t expect_id, ServeReply *reply)
{
    return recvReplyFd(fd, expect_id, reply);
}

int
ServeClient::openEndpointFd(Status *status)
{
    int nfd = -1;
    if (endpoint == Endpoint::Unix) {
        struct sockaddr_un addr;
        if (endpointPath.size() >= sizeof(addr.sun_path)) {
            *status = Status::invalidArgument("socket path too long: " +
                                              endpointPath);
            return -1;
        }
        nfd = ::socket(AF_UNIX, SOCK_STREAM, 0);
        if (nfd < 0) {
            *status = Status::ioError(std::string("socket(): ") +
                                      std::strerror(errno));
            return -1;
        }
        std::memset(&addr, 0, sizeof(addr));
        addr.sun_family = AF_UNIX;
        std::strncpy(addr.sun_path, endpointPath.c_str(),
                     sizeof(addr.sun_path) - 1);
        if (::connect(nfd, reinterpret_cast<struct sockaddr *>(&addr),
                      sizeof(addr)) != 0) {
            *status = Status::ioError("connect(" + endpointPath +
                                      "): " + std::strerror(errno));
            ::close(nfd);
            return -1;
        }
    } else if (endpoint == Endpoint::Tcp) {
        nfd = ::socket(AF_INET, SOCK_STREAM, 0);
        if (nfd < 0) {
            *status = Status::ioError(std::string("socket(): ") +
                                      std::strerror(errno));
            return -1;
        }
        struct sockaddr_in addr;
        std::memset(&addr, 0, sizeof(addr));
        addr.sin_family = AF_INET;
        addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
        addr.sin_port = htons(static_cast<uint16_t>(endpointPort));
        if (::connect(nfd, reinterpret_cast<struct sockaddr *>(&addr),
                      sizeof(addr)) != 0) {
            *status = Status::ioError(
                "connect(127.0.0.1:" + std::to_string(endpointPort) +
                "): " + std::strerror(errno));
            ::close(nfd);
            return -1;
        }
    } else {
        *status = Status::invalidArgument("client was never connected");
        return -1;
    }
    *status = Status();
    return nfd;
}

uint64_t
ServeClient::hedgeDelayMs() const
{
    // Until the reservoir has a meaningful sample the configured floor
    // stands in for the p95; afterwards the larger of the two governs,
    // so hedging stays rare (~5% of calls) by construction.
    if (recentMs.size() < 20)
        return hedgeMs;
    std::vector<double> sorted(recentMs);
    std::sort(sorted.begin(), sorted.end());
    const size_t idx =
        static_cast<size_t>(0.95 * static_cast<double>(sorted.size() - 1));
    const double p95 = sorted[idx];
    return std::max<uint64_t>(
        hedgeMs, static_cast<uint64_t>(std::ceil(p95)));
}

void
ServeClient::recordLatencyMs(double ms)
{
    constexpr size_t kReservoir = 64;
    if (recentMs.size() < kReservoir) {
        recentMs.push_back(ms);
        return;
    }
    recentMs[recentNext] = ms;
    recentNext = (recentNext + 1) % kReservoir;
}

Status
ServeClient::callOnce(const ServeRequest &request, ServeReply *reply)
{
    if (fd < 0)
        return Status::invalidArgument("client is not connected");
    const uint64_t id = nextRequestId++;
    Status st = sendFrame(request.type, id,
                          encodeRequestPayload(request));
    if (!st.ok()) {
        close();   // a half-sent frame desynchronizes the stream
        return st;
    }
    st = recvReply(id, reply);
    if (!st.ok())
        close();   // the stream may be desynchronized; start fresh
    else if (reply->type == MessageType::Error)
        // Surface the application code through reply->code; the call
        // itself succeeded at the protocol level.
        reply->code = reply->code == WireCode::Ok ? WireCode::Internal
                                                  : reply->code;
    return st;
}

Status
ServeClient::callHedged(const ServeRequest &request, ServeReply *reply)
{
    static obs::Counter &hedgesCounter = obs::counter("serve.hedges");
    static obs::Counter &hedgeWinsCounter =
        obs::counter("serve.hedge_wins");

    if (fd < 0)
        return Status::invalidArgument("client is not connected");

    const auto t0 = std::chrono::steady_clock::now();
    const uint64_t primaryId = nextRequestId++;
    Status st = sendFrameFd(fd, request.type, primaryId,
                            encodeRequestPayload(request));
    if (!st.ok()) {
        close();   // a half-sent frame desynchronizes the stream
        return st;
    }

    const auto finish = [&](Status result) {
        if (result.ok() && reply->type == MessageType::Error)
            reply->code = reply->code == WireCode::Ok
                              ? WireCode::Internal
                              : reply->code;
        return result;
    };

    // Give the primary its hedge-delay budget before spending a second
    // connection on it.
    const uint64_t delayMs = hedgeDelayMs();
    struct pollfd one = {fd, POLLIN, 0};
    int rc;
    do {
        rc = ::poll(&one, 1,
                    static_cast<int>(std::min<uint64_t>(delayMs,
                                                        3600 * 1000)));
    } while (rc < 0 && errno == EINTR);
    if (rc < 0) {
        close();
        return Status::ioError(std::string("poll(): ") +
                               std::strerror(errno));
    }
    if (rc > 0) {
        st = recvReplyFd(fd, primaryId, reply);
        if (!st.ok()) {
            close();
            return st;
        }
        // Only un-hedged completions feed the p95 estimate: hedged
        // ones are right-censored at the delay and would drag the
        // estimate down into a hedge-everything feedback loop.
        recordLatencyMs(std::chrono::duration<double, std::milli>(
                            std::chrono::steady_clock::now() - t0)
                            .count());
        return finish(st);
    }

    // The primary is past its p95 — issue the hedge on a fresh
    // connection. If the second connection cannot even be opened or
    // written, fall back to blocking on the primary: hedging is an
    // optimization, never a new failure mode.
    Status hedgeSt;
    const int hedgeFd = openEndpointFd(&hedgeSt);
    uint64_t hedgeId = 0;
    bool hedged = false;
    if (hedgeFd >= 0) {
        hedgeId = nextRequestId++;
        hedgeSt = sendFrameFd(hedgeFd, request.type, hedgeId,
                              encodeRequestPayload(request));
        hedged = hedgeSt.ok();
        if (!hedged)
            ::close(hedgeFd);
    }
    if (!hedged) {
        st = recvReplyFd(fd, primaryId, reply);
        if (!st.ok())
            close();
        return finish(st);
    }
    hedgesCounter.inc();
    ++hedgesTally;
    const uint64_t hedgeSentNs = static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());

    // Race the two legs; the first readable connection that yields a
    // well-formed reply wins. A leg whose stream breaks is closed and
    // the other leg becomes the only hope.
    bool primaryAlive = true;
    bool hedgeAlive = true;
    bool hedgeWon = false;
    for (;;) {
        struct pollfd legs[2];
        nfds_t n = 0;
        if (primaryAlive)
            legs[n++] = {fd, POLLIN, 0};
        if (hedgeAlive)
            legs[n++] = {hedgeFd, POLLIN, 0};
        do {
            rc = ::poll(legs, n, -1);
        } while (rc < 0 && errno == EINTR);
        if (rc < 0) {
            st = Status::ioError(std::string("poll(): ") +
                                 std::strerror(errno));
            break;
        }
        const bool tryPrimary =
            primaryAlive && legs[0].fd == fd && legs[0].revents != 0;
        const bool readHedge = !tryPrimary;
        st = recvReplyFd(readHedge ? hedgeFd : fd,
                         readHedge ? hedgeId : primaryId, reply);
        if (st.ok()) {
            hedgeWon = readHedge;
            break;
        }
        if (readHedge) {
            ::close(hedgeFd);
            hedgeAlive = false;
        } else {
            close();
            primaryAlive = false;
        }
        if (!primaryAlive && !hedgeAlive)
            break;   // both streams broke; report the last Status
    }
    if (!primaryAlive && !hedgeAlive)
        return st;
    if (!st.ok()) {
        // poll() itself failed: tear down whatever is still open.
        if (hedgeAlive)
            ::close(hedgeFd);
        close();
        return st;
    }

    // Tell the loser's server to stop working on the duplicate before
    // closing its connection — the whole point of the Cancel message.
    if (hedgeWon) {
        hedgeWinsCounter.inc();
        ++hedgeWinsTally;
        if (primaryAlive) {
            ServeRequest cancel;
            cancel.type = MessageType::Cancel;
            cancel.cancelTargetId = primaryId;
            sendFrameFd(fd, MessageType::Cancel, nextRequestId++,
                        encodeRequestPayload(cancel));
            close();
        }
        fd = hedgeFd;   // adopt the winning connection
    } else if (hedgeAlive) {
        ServeRequest cancel;
        cancel.type = MessageType::Cancel;
        cancel.cancelTargetId = hedgeId;
        sendFrameFd(hedgeFd, MessageType::Cancel, nextRequestId++,
                    encodeRequestPayload(cancel));
        ::close(hedgeFd);
    }
    const uint64_t winNs = static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
    obs::emitSpan(hedgeWon ? "serve.client.hedge_win"
                           : "serve.client.hedge_lose",
                  reply->traceId, hedgeSentNs, winNs - hedgeSentNs);
    return finish(st);
}

namespace {

/** xorshift64*: one cheap, seedable jitter stream per client. */
uint64_t
jitterNext(uint64_t *state)
{
    uint64_t x = *state;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    *state = x;
    return x * 0x2545f4914f6cdd1dull;
}

} // namespace

Status
ServeClient::call(const ServeRequest &request, ServeReply *reply)
{
    static obs::Counter &retriesCounter =
        obs::counter("serve.client.retries");
    static obs::Counter &gaveUpCounter =
        obs::counter("serve.client.gave_up");

    for (unsigned attempt = 1;; ++attempt) {
        Status st;
        if (fd < 0 && endpoint != Endpoint::None)
            st = reconnect();   // a respawned worker = a fresh socket
        if (st.ok())
            st = hedgeMs != 0 && isIdempotentRequest(request.type)
                     ? callHedged(request, reply)
                     : callOnce(request, reply);

        // Classify the outcome. A transport failure is retryable for
        // idempotent requests: the reply (if any) was never seen, and
        // re-sending a pure read cannot double-apply anything.
        uint32_t hintMs = 0;
        bool retryable = false;
        if (!st.ok()) {
            retryable = st.code() != StatusCode::InvalidArgument;
        } else if (isRetryableCode(reply->code)) {
            retryable = true;
            hintMs = reply->retryAfterMs;
        } else {
            return st;   // success, or a non-retryable app error
        }

        if (!retryable || !isIdempotentRequest(request.type) ||
            attempt >= policy.maxAttempts) {
            if (retryable && policy.maxAttempts > 1 &&
                isIdempotentRequest(request.type)) {
                gaveUpCounter.inc();
                ++gaveUpTally;
                // Break the give-up down by terminal code so a soak
                // can tell shed (resource_exhausted) from corrupt
                // (corrupt_data) from timeout (deadline_exceeded). A
                // transport-level Status maps through the same wire
                // code table the server would have used.
                const WireCode terminal =
                    st.ok() ? reply->code : wireCodeFor(st);
                std::string name = "serve.client.gave_up.";
                for (const char *p = wireCodeName(terminal); *p != '\0';
                     ++p)
                    name += static_cast<char>(
                        std::tolower(static_cast<unsigned char>(*p)));
                obs::counter(name).inc();
            }
            return st;
        }

        // Jittered exponential backoff, floored by the server's
        // retry-after hint: the hint knows when the shard could be
        // back; the jitter keeps a retrying herd from stampeding it.
        if (jitterState == 0)
            jitterState = policy.seed * 0x9e3779b97f4a7c15ull | 1;
        uint64_t backoffMs =
            policy.baseBackoffMs << std::min(attempt - 1, 20u);
        backoffMs = std::min(backoffMs, policy.maxBackoffMs);
        backoffMs = backoffMs / 2 +
                    jitterNext(&jitterState) % (backoffMs + 1);
        backoffMs = std::max<uint64_t>(backoffMs, hintMs);
        retriesCounter.inc();
        ++retriesTally;
        std::this_thread::sleep_for(
            std::chrono::milliseconds(backoffMs));
    }
}

Status
ServeClient::fireAndForget(const ServeRequest &request)
{
    if (fd < 0)
        return Status::invalidArgument("client is not connected");
    return sendFrame(request.type, nextRequestId++,
                     encodeRequestPayload(request));
}

Status
ServeClient::ping(std::string *info)
{
    ServeRequest request;
    request.type = MessageType::Ping;
    ServeReply reply;
    const Status st = call(request, &reply);
    if (!st.ok())
        return st;
    if (reply.code != WireCode::Ok)
        return statusFromWire(reply.code, reply.message);
    if (info != nullptr)
        *info = reply.serverInfo;
    return Status();
}

Status
ServeClient::stats(std::string *json, uint64_t *trace_id_out)
{
    ServeRequest request;
    request.type = MessageType::Stats;
    ServeReply reply;
    const Status st = call(request, &reply);
    if (!st.ok())
        return st;
    if (reply.code != WireCode::Ok)
        return statusFromWire(reply.code, reply.message);
    if (json != nullptr)
        *json = reply.statsJson;
    if (trace_id_out != nullptr)
        *trace_id_out = reply.traceId;
    return Status();
}

Status
ServeClient::health(std::vector<ShardHealth> *shards)
{
    ServeRequest request;
    request.type = MessageType::Health;
    ServeReply reply;
    const Status st = call(request, &reply);
    if (!st.ok())
        return st;
    if (reply.code != WireCode::Ok)
        return statusFromWire(reply.code, reply.message);
    if (shards != nullptr)
        *shards = reply.shards;
    return Status();
}

// --- load generator --------------------------------------------------

namespace {

/** What one client thread accumulated. */
struct ClientTally
{
    uint64_t attempted = 0;
    uint64_t ok = 0;
    uint64_t rejected = 0;
    uint64_t errors = 0;
    uint64_t transport = 0;
    uint64_t killed = 0;
    uint64_t mismatches = 0;
    uint64_t retried = 0;
    uint64_t retries = 0;
    uint64_t gaveUp = 0;
    uint64_t expired = 0;
    uint64_t hedges = 0;
    uint64_t hedgeWins = 0;
    std::vector<double> latenciesMs;
    std::vector<double> interactiveMs;   ///< BranchStats Ok replies
    std::vector<double> batchMs;         ///< everything else Ok
};

/**
 * Direct in-process result of the same slice, for --verify: open the
 * published cache entry and drive a fresh predictor over records
 * [first, first+count), exactly as the server does.
 */
bool
verifyReply(const LoadGenConfig &cfg, const std::string &predictor,
            uint64_t first, uint64_t count, const ServeReply &reply)
{
    const Workload workload = findWorkload(cfg.workload);
    const WorkloadInput &input = workload.inputs.at(cfg.inputIdx);
    const TraceCacheKey key{workload.name, input.label, input.seed,
                            cfg.instructions};
    const TraceCache cache(traceCacheDir());
    Status st;
    auto reader = TraceStoreReader::open(cache.entryPath(key), &st);
    if (reader == nullptr)
        return false;
    auto bp = makePredictor(predictor);
    PredictorSim sim(*bp, /*collect_per_branch=*/false);
    if (!reader->replayRange(first, count, sim).ok())
        return false;
    return sim.condExecs() == reply.condExecs &&
           sim.condMispreds() == reply.condMispreds &&
           doubleBits(sim.accuracy()) == reply.accuracyBits;
}

ClientTally
clientLoop(const LoadGenConfig &cfg, unsigned index)
{
    ClientTally tally;
    // Per-client stream from the loadgen seed via the shared audited
    // derivation, so nearby client indices stay decorrelated.
    Rng rng = Rng::stream(cfg.seed, index);
    ServeClient client;
    RetryPolicy retry = cfg.retry;
    retry.seed = cfg.retry.seed + index;   // decorrelate the jitter
    client.setRetryPolicy(retry);
    client.setHedgeMs(cfg.hedgeMs);

    const auto loopStart = std::chrono::steady_clock::now();
    for (unsigned i = 0; i < cfg.requestsPerClient; ++i) {
        if (cfg.openLoopHz > 0.0) {
            // Open-loop pacing: request i is *due* at start + i/Hz.
            // Sleep only when ahead of schedule; when the server is
            // slow we are behind and send immediately — the arrival
            // process never slows down, the queue grows. That is what
            // makes a 10x oversubscription test honest.
            const auto due =
                loopStart +
                std::chrono::nanoseconds(static_cast<uint64_t>(
                    1e9 * static_cast<double>(i) / cfg.openLoopHz));
            if (due > std::chrono::steady_clock::now())
                std::this_thread::sleep_until(due);
        }
        if (!client.connected()) {
            if (!client.connectUnix(cfg.socketPath).ok()) {
                ++tally.transport;
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(5));
                continue;
            }
        }

        ServeRequest request;
        const bool interactive =
            cfg.interactiveFraction > 0.0 &&
            rng.chance(cfg.interactiveFraction);
        request.type = interactive ? MessageType::BranchStats
                                   : MessageType::Simulate;
        request.workload = cfg.workload;
        request.inputIdx = cfg.inputIdx;
        request.instructions = cfg.instructions;
        request.deadlineMs = cfg.deadlineMs;
        request.predictor =
            cfg.predictors[rng.below(cfg.predictors.size())];
        if (interactive) {
            // A small hot-branch read: the interactive class the
            // scheduler is supposed to protect under overload.
            request.topK = 4;
        } else if (cfg.sliceRecords != 0 &&
                   cfg.sliceRecords < cfg.instructions) {
            request.first =
                rng.below(cfg.instructions - cfg.sliceRecords + 1);
            request.count = cfg.sliceRecords;
        }
        ++tally.attempted;

        if (cfg.killProb > 0.0 && rng.chance(cfg.killProb)) {
            // Randomized client kill: send the request, then vanish
            // without reading the reply. The server must shrug this
            // off (EPIPE on its write, never a crash or a wedge).
            client.fireAndForget(request);
            client.close();
            ++tally.killed;
            continue;
        }

        const auto t0 = std::chrono::steady_clock::now();
        const uint64_t retriesBefore = client.retriesObserved();
        ServeReply reply;
        const Status st = client.call(request, &reply);
        const auto t1 = std::chrono::steady_clock::now();
        const uint64_t retriesDelta =
            client.retriesObserved() - retriesBefore;
        if (retriesDelta > 0) {
            ++tally.retried;
            tally.retries += retriesDelta;
        }
        if (!st.ok()) {
            ++tally.transport;
            continue;
        }
        const double latencyMs =
            std::chrono::duration<double, std::milli>(t1 - t0).count();
        tally.latenciesMs.push_back(latencyMs);
        if (reply.code == WireCode::Ok) {
            ++tally.ok;
            (interactive ? tally.interactiveMs : tally.batchMs)
                .push_back(latencyMs);
            if (cfg.verify && !interactive) {
                const uint64_t first = request.first;
                const uint64_t count =
                    request.count == 0
                        ? cfg.instructions - request.first
                        : request.count;
                if (!verifyReply(cfg, request.predictor, first, count,
                                 reply))
                    ++tally.mismatches;
            }
        } else if (reply.code == WireCode::DeadlineExceeded) {
            ++tally.expired;
        } else if (reply.code == WireCode::ResourceExhausted ||
                   reply.code == WireCode::Busy) {
            ++tally.rejected;
            // Closed-loop backoff: the server asked for it. Open loop
            // must not back off — slowing the arrival process would
            // falsify the offered load.
            if (cfg.openLoopHz <= 0.0)
                std::this_thread::sleep_for(std::chrono::milliseconds(
                    1 + static_cast<long>(rng.below(5))));
        } else {
            ++tally.errors;
        }
    }
    tally.gaveUp = client.gaveUpObserved();
    tally.hedges = client.hedgesObserved();
    tally.hedgeWins = client.hedgeWinsObserved();
    return tally;
}

double
exactPercentile(std::vector<double> &sorted, double q)
{
    if (sorted.empty())
        return 0.0;
    const double rank =
        q * static_cast<double>(sorted.size() - 1);
    const size_t lo = static_cast<size_t>(std::floor(rank));
    const size_t hi = static_cast<size_t>(std::ceil(rank));
    const double frac = rank - std::floor(rank);
    return sorted[lo] + (sorted[hi] - sorted[lo]) * frac;
}

} // namespace

LoadGenResult
runLoadGen(const LoadGenConfig &cfg)
{
    const auto t0 = std::chrono::steady_clock::now();
    std::vector<ClientTally> tallies(cfg.clients);
    std::vector<std::thread> threads;
    threads.reserve(cfg.clients);
    for (unsigned c = 0; c < cfg.clients; ++c) {
        threads.emplace_back([&cfg, &tallies, c] {
            tallies[c] = clientLoop(cfg, c);
        });
    }
    for (std::thread &t : threads)
        t.join();
    const auto t1 = std::chrono::steady_clock::now();

    LoadGenResult result;
    std::vector<double> all;
    std::vector<double> interactiveAll;
    std::vector<double> batchAll;
    for (const ClientTally &t : tallies) {
        result.attempted += t.attempted;
        result.ok += t.ok;
        result.rejected += t.rejected;
        result.errors += t.errors;
        result.transport += t.transport;
        result.killed += t.killed;
        result.mismatches += t.mismatches;
        result.retried += t.retried;
        result.retries += t.retries;
        result.gaveUp += t.gaveUp;
        result.expired += t.expired;
        result.hedges += t.hedges;
        result.hedgeWins += t.hedgeWins;
        all.insert(all.end(), t.latenciesMs.begin(),
                   t.latenciesMs.end());
        interactiveAll.insert(interactiveAll.end(),
                              t.interactiveMs.begin(),
                              t.interactiveMs.end());
        batchAll.insert(batchAll.end(), t.batchMs.begin(),
                        t.batchMs.end());
    }
    result.elapsedSeconds =
        std::chrono::duration<double>(t1 - t0).count();
    std::sort(all.begin(), all.end());
    result.p50Ms = exactPercentile(all, 0.50);
    result.p99Ms = exactPercentile(all, 0.99);
    std::sort(interactiveAll.begin(), interactiveAll.end());
    result.interactiveP50Ms = exactPercentile(interactiveAll, 0.50);
    result.interactiveP99Ms = exactPercentile(interactiveAll, 0.99);
    std::sort(batchAll.begin(), batchAll.end());
    result.batchP50Ms = exactPercentile(batchAll, 0.50);
    result.batchP99Ms = exactPercentile(batchAll, 0.99);
    return result;
}

} // namespace bpnsp::serve
