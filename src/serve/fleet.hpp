/**
 * @file
 * Fleet mode: a supervisor/router in front of N serve worker
 * *processes*, so one crashed or wedged worker never takes the
 * service down.
 *
 * Topology (see DESIGN.md "Fleet"):
 *
 *   clients ── public socket ── FleetSupervisor (router + monitor)
 *                                 ├─ worker 0  <socket>.w0  (+ .hb)
 *                                 ├─ worker 1  <socket>.w1  (+ .hb)
 *                                 └─ ...
 *
 *  - Each worker is a fork+exec'd `bpnsp_served --fleet-worker=<i>`
 *    serving a private UNIX socket. Workers own a consistent-hash
 *    slice of the trace-digest space (fleetShardFor), so each
 *    worker's reader/chunk caches stay hot on its shard.
 *  - The router accepts client connections on the public socket and
 *    forwards request frames *verbatim* to the owning worker (request
 *    ids and payloads untouched), relaying the reply frame back.
 *    Ping/Stats/Health answer from the supervisor itself; Health rows
 *    are enriched with each live worker's queue depth and estimated
 *    queued work via a bounded probe of the worker's own Health.
 *  - Deadline propagation: a request carrying deadlineMs is
 *    re-encoded with the deadline decremented by the time it spent
 *    inside the router, and one that has already expired is answered
 *    DEADLINE_EXCEEDED without costing worker time. Deadline-free
 *    requests keep the verbatim forwarding path (which preserves
 *    trailing payload bytes a newer client may have appended).
 *  - Hedging (hedgeMs != 0): an idempotent request whose owning
 *    worker has not started replying after hedgeMs is duplicated to
 *    the next shard on a fresh connection — every worker shares one
 *    on-disk corpus, so sharding is cache warmth, not correctness —
 *    and the first full reply wins; the loser gets a Cancel frame for
 *    the duplicate and its connection is closed
 *    (serve.hedges / serve.hedge_wins).
 *  - The monitor learns of worker deaths via SIGCHLD (self-pipe,
 *    util/signals.hpp) and of wedged workers via an mtime heartbeat
 *    file each worker touches (the campaign stall-watchdog pattern):
 *    a worker whose heartbeat goes stale is SIGKILLed and its death
 *    flows through the same respawn path.
 *  - Respawns back off exponentially (capped) while deaths are rapid.
 *    A crash-looping shard — breakerDeaths deaths inside
 *    breakerWindowMs — trips a circuit breaker: the shard is marked
 *    Degraded and its requests answer UNAVAILABLE with a retry-after
 *    hint instead of hanging, while the other shards serve on. After
 *    breakerCooldownMs one probe worker is spawned (half-open).
 *  - drain() (SIGTERM) closes the public listener, gives in-flight
 *    connections a bounded grace period, then fans SIGTERM out to
 *    every worker so each runs its own graceful drain.
 *
 * Fleet counters: serve.fleet.{workers, worker_deaths, respawns,
 * breaker_trips, wedge_kills, unavailable, routed, connections}. The
 * supervisor's run report (schema_rev 7) carries them; worker
 * processes do not write reports.
 */

#ifndef BPNSP_SERVE_FLEET_HPP
#define BPNSP_SERVE_FLEET_HPP

#include <atomic>
#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include <condition_variable>

#include "serve/protocol.hpp"
#include "util/status.hpp"

namespace bpnsp::serve {

/** Everything a fleet needs. */
struct FleetConfig
{
    std::string socketPath;   ///< public router socket (required)
    unsigned workers = 2;     ///< shard / worker-process count

    /**
     * argv prefix that execs one worker (argv[0] = binary path). The
     * supervisor appends per-worker --socket / --fleet-worker /
     * --heartbeat-file / --heartbeat-ms / --faults-bump. Required.
     */
    std::vector<std::string> workerCommand;

    uint64_t heartbeatMs = 250;       ///< worker liveness pulse period
    uint64_t stallMs = 5000;          ///< stale pulse => wedged => kill
    uint64_t backoffBaseMs = 100;     ///< respawn backoff floor
    uint64_t backoffCapMs = 2000;     ///< respawn backoff cap
    unsigned breakerDeaths = 5;       ///< deaths inside the window...
    uint64_t breakerWindowMs = 10000; ///< ...that trip the breaker
    uint64_t breakerCooldownMs = 3000; ///< degraded time before probe
    uint64_t drainGraceMs = 5000;     ///< in-flight conn grace on drain

    /**
     * Router-side hedged requests: duplicate an idempotent request to
     * the next shard when the owning worker has not started replying
     * after this many ms (0 = off). Needs >= 2 workers to do anything.
     */
    uint64_t hedgeMs = 0;
};

/** Point-in-time view of one shard (tests, Health replies). */
struct ShardStatus
{
    uint32_t shard = 0;
    uint8_t state = ShardHealth::Ready;   ///< ShardHealth::State
    int pid = 0;                          ///< live worker pid (0 down)
    uint32_t restarts = 0;                ///< respawns since start
    uint32_t deaths = 0;
    uint32_t breakerTrips = 0;
};

/**
 * The shard owning (workload, input, instructions) in an N-worker
 * fleet: a stable hash of the trace-cache identity, so every router
 * and every test agrees, and repeated requests for one trace always
 * land on the worker whose caches are hot for it. Fixed for the life
 * of a fleet; changing N reshards, which only moves cache warmth —
 * all workers share one on-disk corpus.
 */
unsigned fleetShardFor(const std::string &workload, uint32_t input_idx,
                       uint64_t instructions, unsigned workers);

/** Supervisor + router; one per fleet, owns the worker processes. */
class FleetSupervisor
{
  public:
    explicit FleetSupervisor(FleetConfig config);
    ~FleetSupervisor();

    FleetSupervisor(const FleetSupervisor &) = delete;
    FleetSupervisor &operator=(const FleetSupervisor &) = delete;

    /** Bind the public socket, spawn every worker, start routing. */
    Status start();

    /**
     * Graceful fleet drain: close the listener, give in-flight
     * connections cfg.drainGraceMs to finish, force-close stragglers,
     * SIGTERM every worker (each drains itself), reap them all.
     * Idempotent.
     */
    void drain();

    bool running() const { return started && !stopped; }

    const FleetConfig &config() const { return cfg; }

    /** Snapshot of every shard's supervision state. */
    std::vector<ShardStatus> shardStatuses();

    /** The private socket / heartbeat file of one shard. */
    std::string workerSocketPath(unsigned shard) const;
    std::string heartbeatPath(unsigned shard) const;

  private:
    struct Shard;

    void monitorLoop();
    void reapDeaths();
    void spawnShardLocked(Shard &shard, bool respawn);
    void acceptLoop();
    void serveConn(int client_fd, uint64_t conn_id);
    bool forwardToShard(unsigned shard_idx, int client_fd,
                        const uint8_t *frame, size_t frame_len,
                        std::vector<int> &upstreams,
                        uint64_t request_id,
                        const ServeRequest &request);
    bool sendRouterReply(int client_fd, const ServeReply &reply,
                         uint64_t request_id);
    void registerConnFd(int fd);
    void unregisterConnFd(int fd);

    FleetConfig cfg;
    bool started = false;
    bool stopped = false;

    int listenFd = -1;
    int childPipeFd = -1;   ///< SIGCHLD self-pipe read end

    std::thread monitorThread;
    std::thread acceptThread;
    std::atomic<bool> quitFlag{false};
    std::atomic<bool> acceptingFlag{true};

    std::mutex shardsMu;
    std::vector<Shard> shards;

    std::mutex connMu;
    std::condition_variable connCv;
    std::map<uint64_t, std::thread> connThreads;
    std::vector<uint64_t> finishedConnIds;
    std::set<int> connFds;   ///< every live client+upstream fd
    uint64_t nextConnId = 1;
};

} // namespace bpnsp::serve

#endif // BPNSP_SERVE_FLEET_HPP
