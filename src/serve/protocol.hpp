/**
 * @file
 * `bpnsp-serve-v1`: the wire protocol of the prediction-serving
 * daemon.
 *
 * Every message travels in one length-prefixed, checksummed, versioned
 * frame (little-endian):
 *
 *   offset size field
 *   0      4    magic       0x31565342 ("BSV1")
 *   4      2    version     kProtocolVersion (1)
 *   6      2    type        MessageType
 *   8      8    request id  chosen by the client, echoed verbatim in
 *                           the matching reply
 *   16     4    payload len N, <= kMaxFramePayload
 *   20     4    payload crc FNV-1a 64 of the payload, truncated to 32
 *   24     N    payload     message-specific fields (WireWriter)
 *
 * Versioning/compat rules: the magic+version pair is checked before
 * anything else — a version this side does not speak is refused with a
 * clean InvalidArgument, never misparsed. Within version 1, payloads
 * may only grow at the *end* (decoders ignore trailing bytes they do
 * not know), mirroring the additive schema_rev discipline of the run
 * reports. Anything incompatible bumps kProtocolVersion.
 *
 * Payload primitives are fixed-width little-endian integers and
 * u32-length-prefixed strings; every read is bounds-checked and
 * returns a Status instead of crashing, because the bytes come from
 * the network. There is deliberately no varint here: frames are small,
 * and fixed widths keep the decoder trivially auditable.
 *
 * Error handling: replies carry a WireCode (a superset of
 * StatusCode with ResourceExhausted for admission rejection). A
 * protocol-level failure — bad magic, unsupported version, oversized
 * length prefix, checksum mismatch, malformed payload — gets a
 * best-effort Error reply and the connection is closed.
 */

#ifndef BPNSP_SERVE_PROTOCOL_HPP
#define BPNSP_SERVE_PROTOCOL_HPP

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "util/status.hpp"

namespace bpnsp::serve {

/** Protocol identity (see the frame layout above). */
inline constexpr uint32_t kFrameMagic = 0x31565342u;   // "BSV1"
inline constexpr uint16_t kProtocolVersion = 1;

/** Hard payload bound: larger prefixes are refused before any read. */
inline constexpr uint32_t kMaxFramePayload = 16u * 1024 * 1024;

/** Fixed-size frame header. */
struct FrameHeader
{
    uint32_t magic = kFrameMagic;
    uint16_t version = kProtocolVersion;
    uint16_t type = 0;
    uint64_t requestId = 0;
    uint32_t payloadLen = 0;
    uint32_t payloadCrc = 0;
};

inline constexpr size_t kFrameHeaderBytes = 24;

/** Message types (requests odd concepts, replies paired). */
enum class MessageType : uint16_t
{
    Invalid = 0,
    Ping = 1,
    PingReply = 2,
    Simulate = 3,
    SimulateReply = 4,
    BranchStats = 5,
    BranchStatsReply = 6,
    H2p = 7,
    H2pReply = 8,
    Materialize = 9,
    MaterializeReply = 10,
    Error = 11,   ///< generic failure reply (any request type)
    Stats = 12,   ///< live metric-registry snapshot (io-thread fast path)
    StatsReply = 13,
    Health = 14,  ///< per-shard readiness probe (io-thread fast path)
    HealthReply = 15,
    Cancel = 16,  ///< best-effort cancel of an earlier request on the
                  ///< same connection (hedge-loser reclamation)
    CancelReply = 17,
};

/** Stable name of a message type ("simulate", ...). */
const char *messageTypeName(MessageType type);

/** True for the request types a server accepts. */
bool isRequestType(MessageType type);

/** Application-level result codes carried by replies. */
enum class WireCode : uint16_t
{
    Ok = 0,
    InvalidArgument = 1,
    IoError = 2,
    CorruptData = 3,
    Busy = 4,
    Cancelled = 5,
    DeadlineExceeded = 6,
    ResourceExhausted = 7,   ///< bounded-queue admission rejection
    Internal = 8,
    Unimplemented = 9,
    Unavailable = 10,        ///< shard down / respawning; retryable
};

/** Stable name of a wire code ("RESOURCE_EXHAUSTED", ...). */
const char *wireCodeName(WireCode code);

/** Map the library Status taxonomy onto the wire. */
WireCode wireCodeFor(const Status &status);

/** Map a wire code back into the Status taxonomy (for clients). */
Status statusFromWire(WireCode code, const std::string &message);

/**
 * One request, any type: a superset of the per-type fields. Unused
 * fields stay at their defaults and are not serialized for types that
 * do not carry them.
 */
struct ServeRequest
{
    MessageType type = MessageType::Invalid;
    std::string workload;      ///< workload name (all request types)
    uint32_t inputIdx = 0;     ///< input index within the workload
    uint64_t instructions = 0; ///< trace length (cache-key identity)
    std::string predictor;     ///< Simulate / BranchStats / H2p
    uint64_t first = 0;        ///< Simulate: slice start record
    uint64_t count = 0;        ///< Simulate: slice length (0 = to end)
    uint64_t sliceLength = 0;  ///< BranchStats / H2p slicing (0 = whole)
    uint32_t topK = 0;         ///< BranchStats: rows returned (0 = all)
    uint32_t deadlineMs = 0;   ///< per-request deadline (0 = none)

    /**
     * Cancel: the request id (on this same connection) to cancel.
     * Cancellation is best-effort — a queued target is shed with
     * CANCELLED before touching a worker, an in-flight target has its
     * cancel token fired, an already-answered target is a no-op.
     */
    uint64_t cancelTargetId = 0;
};

/** One per-static-branch row of a BranchStats reply. */
struct BranchRow
{
    uint64_t ip = 0;
    uint64_t execs = 0;
    uint64_t mispreds = 0;
    uint64_t taken = 0;
};

/**
 * Per-class frontend target statistics (BranchStatsReply). These ride
 * in a block appended *behind* the traceId/retryAfterMs trailers (the
 * HealthReply overload-block precedent): pre-frontend peers decode up
 * to the trailers and never see it, and a pre-frontend server's
 * shorter payload simply leaves the vector empty.
 */
struct TargetClassStat
{
    uint8_t cls = 0;             ///< InstrClass value (trace/record.hpp)
    uint64_t execs = 0;          ///< transfers of this class executed
    uint64_t targetMispreds = 0; ///< resolved to an unpredicted target
};

/** Readiness of one fleet shard (HealthReply row). */
struct ShardHealth
{
    /** Shard readiness on the wire (u8). */
    enum State : uint8_t
    {
        Ready = 0,       ///< worker alive and heartbeating
        Respawning = 1,  ///< worker died; respawn pending/backing off
        Degraded = 2,    ///< crash-loop breaker open; cooling down
    };

    uint32_t shard = 0;
    uint8_t state = Ready;
    uint64_t pid = 0;       ///< live worker pid (0 when down)
    uint32_t restarts = 0;  ///< respawns since fleet start
    uint32_t deaths = 0;    ///< deaths since fleet start

    /**
     * Overload view of the shard (0 when the server predates the
     * overload layer, or when the supervisor could not probe the
     * worker in time). These do NOT ride inside the fixed 21-byte row
     * block — that stride is load-bearing for older decoders — they
     * travel as a parallel per-row block appended *behind* the
     * traceId/retryAfterMs trailers (see encodeReplyPayload).
     */
    uint32_t queueDepth = 0;    ///< queued requests right now
    uint64_t queuedCostMs = 0;  ///< estimated queued+in-flight work, ms
};

/** Stable name of a shard state ("ready", ...). */
const char *shardStateName(uint8_t state);

/**
 * One reply, any type: code/message always; the rest by type. Numeric
 * results that are doubles travel as IEEE-754 bit patterns so
 * "bit-identical to a direct in-process run" is literal.
 */
struct ServeReply
{
    MessageType type = MessageType::Invalid;
    WireCode code = WireCode::Ok;
    std::string message;

    /**
     * Server-assigned trace id, stamped into every reply (including
     * errors) as the trailing payload field. Correlates a reply with
     * the server-side span tree: the same id appears in --trace-out /
     * --trace-dir exports and in `serve.slow_request` log lines.
     * 0 means "unassigned" — a pre-tracing v1 server whose shorter
     * payload simply lacks the field (the v1 grow-at-the-end rule).
     */
    uint64_t traceId = 0;

    // SimulateReply
    uint64_t delivered = 0;
    uint64_t condExecs = 0;
    uint64_t condMispreds = 0;
    uint64_t accuracyBits = 0;   ///< double accuracy, bit-cast

    // BranchStatsReply
    std::vector<BranchRow> branches;
    std::vector<TargetClassStat> targetClasses; ///< post-trailer block
                                                ///< (stable class order)

    // H2pReply
    std::vector<uint64_t> h2pIps;        ///< sorted ascending
    uint64_t slices = 0;
    uint64_t avgPerSliceBits = 0;        ///< double, bit-cast
    uint64_t avgMispredFractionBits = 0; ///< double, bit-cast

    // MaterializeReply
    std::string digest;
    uint64_t records = 0;
    std::string path;

    // PingReply
    std::string serverInfo;

    // StatsReply: a bpnsp-stats-v1 JSON document (obs/report.hpp)
    std::string statsJson;

    // HealthReply
    std::vector<ShardHealth> shards;

    // CancelReply: 1 when the target request was found (queued or
    // in-flight) and cancellation was initiated, 0 when it had
    // already completed (or was never seen).
    uint8_t cancelFound = 0;

    /**
     * Retry-after hint in milliseconds, the trailing field of every
     * reply (appended after traceId under the v1 grow-at-the-end
     * rule). Non-zero only on retryable errors — UNAVAILABLE from a
     * degraded or respawning shard — where it tells the client the
     * earliest moment a retry could plausibly succeed. Clients treat
     * it as a floor on their backoff, never a guarantee.
     */
    uint32_t retryAfterMs = 0;
};

/** Bit-cast helpers for the double-as-u64 reply fields. */
inline uint64_t
doubleBits(double v)
{
    uint64_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    return bits;
}

inline double
bitsDouble(uint64_t bits)
{
    double v;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
}

/** @name EINTR-safe blocking fd I/O
 *
 * Shared by the client, the fleet router, and the server's reply
 * path, so there is exactly one partial-read/partial-write loop to
 * audit. Signals fire routinely in fleet mode (SIGCHLD in the
 * supervisor, SIGTERM fan-out, test SIGUSR1); both helpers restart on
 * EINTR — including EINTR from the poll() they park in when a
 * non-blocking fd would block — and never drop or double-count bytes.
 */
/// @{

/**
 * Write all `len` bytes to `fd` (blocking or non-blocking; sends use
 * MSG_NOSIGNAL on sockets so a vanished peer is EPIPE, not SIGPIPE).
 * `poll_timeout_ms` bounds each individual wait for writability (-1 =
 * wait forever); a wait that times out fails with IoError, which for
 * the server means "wedged peer: give up on the connection".
 */
Status writeAllFd(int fd, const uint8_t *bytes, size_t len,
                  int poll_timeout_ms = -1);

/**
 * Read exactly `len` bytes from `fd`. EOF mid-read is an IoError
 * ("peer closed"); `poll_timeout_ms` bounds each individual wait for
 * readability (-1 = wait forever).
 */
Status readExactFd(int fd, uint8_t *out, size_t len,
                   int poll_timeout_ms = -1);
/// @}

/** @name Frame assembly / parsing */
/// @{

/**
 * Serialize a complete frame (header + payload) for the wire.
 * fatal()-free: an oversized payload is InvalidArgument.
 */
Status encodeFrame(MessageType type, uint64_t request_id,
                   const std::vector<uint8_t> &payload,
                   std::vector<uint8_t> *out);

/**
 * Parse and validate a frame header from exactly kFrameHeaderBytes
 * bytes: magic, version, and the payload-length bound are checked
 * here, *before* the caller buffers payloadLen bytes — an adversarial
 * length prefix can never drive allocation.
 */
Status parseFrameHeader(const uint8_t *bytes, size_t len,
                        FrameHeader *out);

/** Verify the payload checksum against the header. */
Status verifyFramePayload(const FrameHeader &header,
                          const uint8_t *payload);
/// @}

/** @name Message payload codecs */
/// @{
std::vector<uint8_t> encodeRequestPayload(const ServeRequest &request);

/** Decode a request payload of the given type (bounds-checked). */
Status decodeRequestPayload(MessageType type, const uint8_t *payload,
                            size_t len, ServeRequest *out);

std::vector<uint8_t> encodeReplyPayload(const ServeReply &reply);

/** Decode a reply payload of the given type (bounds-checked). */
Status decodeReplyPayload(MessageType type, const uint8_t *payload,
                          size_t len, ServeReply *out);
/// @}

/**
 * Bounds-checked sequential reader over a payload. Every accessor
 * returns false once the payload is exhausted or malformed; the first
 * failure latches, so callers may batch reads and check once.
 */
class WireReader
{
  public:
    WireReader(const uint8_t *bytes, size_t len)
        : data(bytes), size(len)
    {
    }

    bool u8(uint8_t *out);
    bool u16(uint16_t *out);
    bool u32(uint32_t *out);
    bool u64(uint64_t *out);
    bool str(std::string *out);   ///< u32 length + bytes

    bool ok() const { return !failed; }
    size_t remaining() const { return size - pos; }

  private:
    bool take(void *out, size_t n);

    const uint8_t *data;
    size_t size;
    size_t pos = 0;
    bool failed = false;
};

/** Little-endian sequential writer (the encoder twin of WireReader). */
class WireWriter
{
  public:
    void u8(uint8_t v);
    void u16(uint16_t v);
    void u32(uint32_t v);
    void u64(uint64_t v);
    void str(const std::string &s);

    std::vector<uint8_t> take() { return std::move(buf); }
    const std::vector<uint8_t> &bytes() const { return buf; }

  private:
    std::vector<uint8_t> buf;
};

} // namespace bpnsp::serve

#endif // BPNSP_SERVE_PROTOCOL_HPP
