#include "serve/protocol.hpp"

#include <cerrno>

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include "tracestore/format.hpp"   // fnv1a, the repo's one checksum

namespace bpnsp::serve {

// --- names -----------------------------------------------------------

const char *
messageTypeName(MessageType type)
{
    switch (type) {
      case MessageType::Invalid:
        return "invalid";
      case MessageType::Ping:
        return "ping";
      case MessageType::PingReply:
        return "ping-reply";
      case MessageType::Simulate:
        return "simulate";
      case MessageType::SimulateReply:
        return "simulate-reply";
      case MessageType::BranchStats:
        return "branch-stats";
      case MessageType::BranchStatsReply:
        return "branch-stats-reply";
      case MessageType::H2p:
        return "h2p";
      case MessageType::H2pReply:
        return "h2p-reply";
      case MessageType::Materialize:
        return "materialize";
      case MessageType::MaterializeReply:
        return "materialize-reply";
      case MessageType::Error:
        return "error";
      case MessageType::Stats:
        return "stats";
      case MessageType::StatsReply:
        return "stats-reply";
      case MessageType::Health:
        return "health";
      case MessageType::HealthReply:
        return "health-reply";
      case MessageType::Cancel:
        return "cancel";
      case MessageType::CancelReply:
        return "cancel-reply";
    }
    return "unknown";
}

const char *
shardStateName(uint8_t state)
{
    switch (state) {
      case ShardHealth::Ready:
        return "ready";
      case ShardHealth::Respawning:
        return "respawning";
      case ShardHealth::Degraded:
        return "degraded";
    }
    return "unknown";
}

bool
isRequestType(MessageType type)
{
    switch (type) {
      case MessageType::Ping:
      case MessageType::Simulate:
      case MessageType::BranchStats:
      case MessageType::H2p:
      case MessageType::Materialize:
      case MessageType::Stats:
      case MessageType::Health:
      case MessageType::Cancel:
        return true;
      default:
        return false;
    }
}

const char *
wireCodeName(WireCode code)
{
    switch (code) {
      case WireCode::Ok:
        return "OK";
      case WireCode::InvalidArgument:
        return "INVALID_ARGUMENT";
      case WireCode::IoError:
        return "IO_ERROR";
      case WireCode::CorruptData:
        return "CORRUPT_DATA";
      case WireCode::Busy:
        return "BUSY";
      case WireCode::Cancelled:
        return "CANCELLED";
      case WireCode::DeadlineExceeded:
        return "DEADLINE_EXCEEDED";
      case WireCode::ResourceExhausted:
        return "RESOURCE_EXHAUSTED";
      case WireCode::Internal:
        return "INTERNAL";
      case WireCode::Unimplemented:
        return "UNIMPLEMENTED";
      case WireCode::Unavailable:
        return "UNAVAILABLE";
    }
    return "UNKNOWN";
}

WireCode
wireCodeFor(const Status &status)
{
    switch (status.code()) {
      case StatusCode::Ok:
        return WireCode::Ok;
      case StatusCode::IoError:
        return WireCode::IoError;
      case StatusCode::CorruptData:
        return WireCode::CorruptData;
      case StatusCode::Busy:
        return WireCode::Busy;
      case StatusCode::Cancelled:
        return WireCode::Cancelled;
      case StatusCode::DeadlineExceeded:
        return WireCode::DeadlineExceeded;
      case StatusCode::InvalidArgument:
        return WireCode::InvalidArgument;
      case StatusCode::Unavailable:
        return WireCode::Unavailable;
    }
    return WireCode::Internal;
}

Status
statusFromWire(WireCode code, const std::string &message)
{
    switch (code) {
      case WireCode::Ok:
        return Status();
      case WireCode::InvalidArgument:
        return Status::invalidArgument(message);
      case WireCode::IoError:
        return Status::ioError(message);
      case WireCode::CorruptData:
        return Status::corruptData(message);
      case WireCode::Busy:
      case WireCode::ResourceExhausted:
        return Status::busy(message);
      case WireCode::Cancelled:
        return Status::cancelled(message);
      case WireCode::DeadlineExceeded:
        return Status::deadlineExceeded(message);
      case WireCode::Internal:
      case WireCode::Unimplemented:
        return Status::ioError(message);
      case WireCode::Unavailable:
        return Status::unavailable(message);
    }
    return Status::ioError(message);
}

// --- wire primitives -------------------------------------------------

bool
WireReader::take(void *out, size_t n)
{
    if (failed || size - pos < n) {
        failed = true;
        return false;
    }
    std::memcpy(out, data + pos, n);
    pos += n;
    return true;
}

bool
WireReader::u8(uint8_t *out)
{
    return take(out, 1);
}

bool
WireReader::u16(uint16_t *out)
{
    return take(out, 2);
}

bool
WireReader::u32(uint32_t *out)
{
    return take(out, 4);
}

bool
WireReader::u64(uint64_t *out)
{
    return take(out, 8);
}

bool
WireReader::str(std::string *out)
{
    uint32_t len = 0;
    if (!u32(&len))
        return false;
    if (size - pos < len) {
        failed = true;
        return false;
    }
    out->assign(reinterpret_cast<const char *>(data + pos), len);
    pos += len;
    return true;
}

void
WireWriter::u8(uint8_t v)
{
    buf.push_back(v);
}

void
WireWriter::u16(uint16_t v)
{
    buf.push_back(static_cast<uint8_t>(v));
    buf.push_back(static_cast<uint8_t>(v >> 8));
}

void
WireWriter::u32(uint32_t v)
{
    for (int i = 0; i < 4; ++i)
        buf.push_back(static_cast<uint8_t>(v >> (8 * i)));
}

void
WireWriter::u64(uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        buf.push_back(static_cast<uint8_t>(v >> (8 * i)));
}

void
WireWriter::str(const std::string &s)
{
    u32(static_cast<uint32_t>(s.size()));
    buf.insert(buf.end(), s.begin(), s.end());
}

// --- EINTR-safe fd I/O -----------------------------------------------

namespace {

/**
 * Park until `fd` is ready for `events`, restarting on EINTR without
 * double-counting the wait budget (a signal storm extends the wait, it
 * never shortens it into a spurious timeout-failure). Returns false
 * only on a genuine timeout or poll error.
 */
bool
pollReady(int fd, short events, int timeout_ms)
{
    for (;;) {
        struct pollfd pfd = {fd, events, 0};
        const int rc = ::poll(&pfd, 1, timeout_ms);
        if (rc > 0)
            return true;
        if (rc == 0)
            return false;   // timeout
        if (errno == EINTR)
            continue;
        return false;
    }
}

} // namespace

Status
writeAllFd(int fd, const uint8_t *bytes, size_t len,
           int poll_timeout_ms)
{
    size_t off = 0;
    while (off < len) {
        const ssize_t n =
            ::send(fd, bytes + off, len - off, MSG_NOSIGNAL);
        if (n > 0) {
            off += static_cast<size_t>(n);
            continue;
        }
        if (n < 0 && errno == EINTR)
            continue;
        if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
            if (!pollReady(fd, POLLOUT, poll_timeout_ms))
                return Status::ioError(
                    "send(): peer not writable within the wait bound");
            continue;
        }
        if (n < 0 && errno == ENOTSOCK) {
            // Plain fd (pipe, regular file): fall back to write().
            const ssize_t w = ::write(fd, bytes + off, len - off);
            if (w > 0) {
                off += static_cast<size_t>(w);
                continue;
            }
            if (w < 0 && errno == EINTR)
                continue;
        }
        return Status::ioError(std::string("send(): ") +
                               std::strerror(errno));
    }
    return Status();
}

Status
readExactFd(int fd, uint8_t *out, size_t len, int poll_timeout_ms)
{
    size_t off = 0;
    while (off < len) {
        const ssize_t n = ::recv(fd, out + off, len - off, 0);
        if (n > 0) {
            off += static_cast<size_t>(n);
            continue;
        }
        if (n == 0)
            return Status::ioError(
                "peer closed the connection mid-message");
        if (errno == EINTR)
            continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK) {
            if (!pollReady(fd, POLLIN, poll_timeout_ms))
                return Status::ioError(
                    "recv(): no data within the wait bound");
            continue;
        }
        return Status::ioError(std::string("recv(): ") +
                               std::strerror(errno));
    }
    return Status();
}

// --- frames ----------------------------------------------------------

namespace {

uint32_t
payloadCrc(const std::vector<uint8_t> &payload)
{
    return static_cast<uint32_t>(
        fnv1a(payload.data(), payload.size()));
}

} // namespace

Status
encodeFrame(MessageType type, uint64_t request_id,
            const std::vector<uint8_t> &payload,
            std::vector<uint8_t> *out)
{
    if (payload.size() > kMaxFramePayload) {
        return Status::invalidArgument(
            "frame payload of " + std::to_string(payload.size()) +
            " bytes exceeds the " + std::to_string(kMaxFramePayload) +
            " byte bound");
    }
    WireWriter w;
    w.u32(kFrameMagic);
    w.u16(kProtocolVersion);
    w.u16(static_cast<uint16_t>(type));
    w.u64(request_id);
    w.u32(static_cast<uint32_t>(payload.size()));
    w.u32(payloadCrc(payload));
    *out = w.take();
    out->insert(out->end(), payload.begin(), payload.end());
    return Status();
}

Status
parseFrameHeader(const uint8_t *bytes, size_t len, FrameHeader *out)
{
    if (len < kFrameHeaderBytes)
        return Status::invalidArgument(
            "frame header truncated: " + std::to_string(len) + " of " +
            std::to_string(kFrameHeaderBytes) + " bytes");
    WireReader r(bytes, kFrameHeaderBytes);
    FrameHeader h;
    uint16_t type = 0;
    r.u32(&h.magic);
    r.u16(&h.version);
    r.u16(&type);
    r.u64(&h.requestId);
    r.u32(&h.payloadLen);
    r.u32(&h.payloadCrc);
    h.type = type;
    if (!r.ok())
        return Status::invalidArgument("frame header unreadable");
    if (h.magic != kFrameMagic)
        return Status::corruptData("bad frame magic");
    if (h.version != kProtocolVersion)
        return Status::invalidArgument(
            "unsupported bpnsp-serve protocol version " +
            std::to_string(h.version) + " (this side speaks " +
            std::to_string(kProtocolVersion) + ")");
    if (h.payloadLen > kMaxFramePayload)
        return Status::invalidArgument(
            "oversized frame: length prefix " +
            std::to_string(h.payloadLen) + " exceeds the " +
            std::to_string(kMaxFramePayload) + " byte bound");
    *out = h;
    return Status();
}

Status
verifyFramePayload(const FrameHeader &header, const uint8_t *payload)
{
    const uint32_t crc = static_cast<uint32_t>(
        fnv1a(payload, header.payloadLen));
    if (crc != header.payloadCrc)
        return Status::corruptData(
            "frame payload checksum mismatch (corrupted frame)");
    return Status();
}

// --- request payloads ------------------------------------------------

std::vector<uint8_t>
encodeRequestPayload(const ServeRequest &request)
{
    WireWriter w;
    switch (request.type) {
      case MessageType::Ping:
      case MessageType::Stats:    // carries nothing, like Ping
      case MessageType::Health:   // carries nothing, like Ping
        break;
      case MessageType::Simulate:
        w.str(request.workload);
        w.u32(request.inputIdx);
        w.u64(request.instructions);
        w.str(request.predictor);
        w.u64(request.first);
        w.u64(request.count);
        w.u32(request.deadlineMs);
        break;
      case MessageType::BranchStats:
      case MessageType::H2p:
        w.str(request.workload);
        w.u32(request.inputIdx);
        w.u64(request.instructions);
        w.str(request.predictor);
        w.u64(request.sliceLength);
        w.u32(request.topK);
        w.u32(request.deadlineMs);
        break;
      case MessageType::Materialize:
        w.str(request.workload);
        w.u32(request.inputIdx);
        w.u64(request.instructions);
        w.u32(request.deadlineMs);
        break;
      case MessageType::Cancel:
        w.u64(request.cancelTargetId);
        break;
      default:
        break;
    }
    return w.take();
}

Status
decodeRequestPayload(MessageType type, const uint8_t *payload,
                     size_t len, ServeRequest *out)
{
    ServeRequest req;
    req.type = type;
    WireReader r(payload, len);
    switch (type) {
      case MessageType::Ping:
      case MessageType::Stats:
      case MessageType::Health:
        break;
      case MessageType::Simulate:
        r.str(&req.workload);
        r.u32(&req.inputIdx);
        r.u64(&req.instructions);
        r.str(&req.predictor);
        r.u64(&req.first);
        r.u64(&req.count);
        r.u32(&req.deadlineMs);
        break;
      case MessageType::BranchStats:
      case MessageType::H2p:
        r.str(&req.workload);
        r.u32(&req.inputIdx);
        r.u64(&req.instructions);
        r.str(&req.predictor);
        r.u64(&req.sliceLength);
        r.u32(&req.topK);
        r.u32(&req.deadlineMs);
        break;
      case MessageType::Materialize:
        r.str(&req.workload);
        r.u32(&req.inputIdx);
        r.u64(&req.instructions);
        r.u32(&req.deadlineMs);
        break;
      case MessageType::Cancel:
        r.u64(&req.cancelTargetId);
        break;
      default:
        return Status::invalidArgument(
            std::string("not a request type: ") +
            messageTypeName(type));
    }
    if (!r.ok())
        return Status::corruptData(
            std::string("malformed ") + messageTypeName(type) +
            " request payload");
    // v1 compat rule: trailing bytes a newer peer appended are legal
    // and ignored.
    *out = std::move(req);
    return Status();
}

// --- reply payloads --------------------------------------------------

std::vector<uint8_t>
encodeReplyPayload(const ServeReply &reply)
{
    WireWriter w;
    w.u16(static_cast<uint16_t>(reply.code));
    w.str(reply.message);
    switch (reply.type) {
      case MessageType::PingReply:
        w.str(reply.serverInfo);
        break;
      case MessageType::SimulateReply:
        w.u64(reply.delivered);
        w.u64(reply.condExecs);
        w.u64(reply.condMispreds);
        w.u64(reply.accuracyBits);
        break;
      case MessageType::BranchStatsReply:
        w.u64(reply.delivered);
        w.u64(reply.condExecs);
        w.u64(reply.condMispreds);
        w.u32(static_cast<uint32_t>(reply.branches.size()));
        for (const BranchRow &row : reply.branches) {
            w.u64(row.ip);
            w.u64(row.execs);
            w.u64(row.mispreds);
            w.u64(row.taken);
        }
        break;
      case MessageType::H2pReply:
        w.u64(reply.slices);
        w.u64(reply.avgPerSliceBits);
        w.u64(reply.avgMispredFractionBits);
        w.u32(static_cast<uint32_t>(reply.h2pIps.size()));
        for (const uint64_t ip : reply.h2pIps)
            w.u64(ip);
        break;
      case MessageType::MaterializeReply:
        w.str(reply.digest);
        w.u64(reply.records);
        w.str(reply.path);
        break;
      case MessageType::StatsReply:
        w.str(reply.statsJson);
        break;
      case MessageType::HealthReply:
        w.u32(static_cast<uint32_t>(reply.shards.size()));
        for (const ShardHealth &row : reply.shards) {
            w.u32(row.shard);
            w.u8(row.state);
            w.u64(row.pid);
            w.u32(row.restarts);
            w.u32(row.deaths);
        }
        break;
      case MessageType::CancelReply:
        w.u8(reply.cancelFound);
        break;
      case MessageType::Error:
        break;
      default:
        break;
    }
    // The trace id is the trailing field of *every* reply type —
    // appended under the v1 grow-at-the-end rule, so pre-tracing
    // peers decode the shorter payload and simply never see it. The
    // retry-after hint rides behind it under the same rule: peers
    // that predate the fleet decode up to the trace id and ignore
    // the rest.
    w.u64(reply.traceId);
    w.u32(reply.retryAfterMs);
    // HealthReply overload block: per-row queue depth / estimated
    // queued work. The 21-byte row stride above is load-bearing for
    // older decoders, so growing the rows themselves would misparse —
    // instead the block rides behind the universal trailers as a
    // parallel array, which pre-overload peers simply ignore.
    if (reply.type == MessageType::HealthReply) {
        w.u32(static_cast<uint32_t>(reply.shards.size()));
        for (const ShardHealth &row : reply.shards) {
            w.u32(row.queueDepth);
            w.u64(row.queuedCostMs);
        }
    }
    // BranchStatsReply per-class target block, behind the trailers for
    // the same reason: pre-frontend peers decode up to retryAfterMs
    // and ignore the rest.
    if (reply.type == MessageType::BranchStatsReply) {
        w.u32(static_cast<uint32_t>(reply.targetClasses.size()));
        for (const TargetClassStat &row : reply.targetClasses) {
            w.u8(row.cls);
            w.u64(row.execs);
            w.u64(row.targetMispreds);
        }
    }
    return w.take();
}

Status
decodeReplyPayload(MessageType type, const uint8_t *payload,
                   size_t len, ServeReply *out)
{
    ServeReply reply;
    reply.type = type;
    WireReader r(payload, len);
    uint16_t code = 0;
    r.u16(&code);
    r.str(&reply.message);
    reply.code = static_cast<WireCode>(code);
    switch (type) {
      case MessageType::PingReply:
        r.str(&reply.serverInfo);
        break;
      case MessageType::SimulateReply:
        r.u64(&reply.delivered);
        r.u64(&reply.condExecs);
        r.u64(&reply.condMispreds);
        r.u64(&reply.accuracyBits);
        break;
      case MessageType::BranchStatsReply: {
        r.u64(&reply.delivered);
        r.u64(&reply.condExecs);
        r.u64(&reply.condMispreds);
        uint32_t rows = 0;
        r.u32(&rows);
        // Bound by what the payload can actually hold, so a corrupt
        // count cannot drive allocation.
        if (r.ok() && static_cast<uint64_t>(rows) * 32 > r.remaining())
            return Status::corruptData(
                "branch-stats reply row count exceeds payload");
        for (uint32_t i = 0; i < rows && r.ok(); ++i) {
            BranchRow row;
            r.u64(&row.ip);
            r.u64(&row.execs);
            r.u64(&row.mispreds);
            r.u64(&row.taken);
            reply.branches.push_back(row);
        }
        break;
      }
      case MessageType::H2pReply: {
        r.u64(&reply.slices);
        r.u64(&reply.avgPerSliceBits);
        r.u64(&reply.avgMispredFractionBits);
        uint32_t n = 0;
        r.u32(&n);
        if (r.ok() && static_cast<uint64_t>(n) * 8 > r.remaining())
            return Status::corruptData(
                "h2p reply ip count exceeds payload");
        for (uint32_t i = 0; i < n && r.ok(); ++i) {
            uint64_t ip = 0;
            r.u64(&ip);
            reply.h2pIps.push_back(ip);
        }
        break;
      }
      case MessageType::MaterializeReply:
        r.str(&reply.digest);
        r.u64(&reply.records);
        r.str(&reply.path);
        break;
      case MessageType::StatsReply:
        r.str(&reply.statsJson);
        break;
      case MessageType::HealthReply: {
        uint32_t rows = 0;
        r.u32(&rows);
        if (r.ok() && static_cast<uint64_t>(rows) * 21 > r.remaining())
            return Status::corruptData(
                "health reply shard count exceeds payload");
        for (uint32_t i = 0; i < rows && r.ok(); ++i) {
            ShardHealth row;
            r.u32(&row.shard);
            r.u8(&row.state);
            r.u64(&row.pid);
            r.u32(&row.restarts);
            r.u32(&row.deaths);
            reply.shards.push_back(row);
        }
        break;
      }
      case MessageType::CancelReply:
        r.u8(&reply.cancelFound);
        break;
      case MessageType::Error:
        break;
      default:
        return Status::invalidArgument(
            std::string("not a reply type: ") +
            messageTypeName(type));
    }
    // Trailing trace id: present when the server is tracing-aware,
    // absent (traceId stays 0) from an older peer's shorter payload.
    if (r.ok() && r.remaining() >= 8)
        r.u64(&reply.traceId);
    // Trailing retry-after hint, appended behind the trace id by
    // fleet-aware servers (stays 0 from older peers).
    if (r.ok() && r.remaining() >= 4)
        r.u32(&reply.retryAfterMs);
    // HealthReply overload block (parallel per-row arrays appended
    // behind the trailers; see the encoder for why). Absent from
    // pre-overload servers: depths stay 0.
    if (type == MessageType::HealthReply && r.ok() &&
        r.remaining() >= 4) {
        uint32_t n = 0;
        r.u32(&n);
        if (r.ok() && static_cast<uint64_t>(n) * 12 > r.remaining())
            return Status::corruptData(
                "health reply overload block exceeds payload");
        for (uint32_t i = 0; i < n && r.ok(); ++i) {
            uint32_t depth = 0;
            uint64_t costMs = 0;
            r.u32(&depth);
            r.u64(&costMs);
            if (i < reply.shards.size()) {
                reply.shards[i].queueDepth = depth;
                reply.shards[i].queuedCostMs = costMs;
            }
        }
    }
    // BranchStatsReply per-class target block. A pre-frontend server's
    // shorter payload leaves targetClasses empty; a present-but-short
    // block is corruption, not compat.
    if (type == MessageType::BranchStatsReply && r.ok() &&
        r.remaining() >= 4) {
        uint32_t n = 0;
        r.u32(&n);
        if (r.ok() && static_cast<uint64_t>(n) * 17 > r.remaining())
            return Status::corruptData(
                "branch-stats reply target-class block exceeds "
                "payload");
        for (uint32_t i = 0; i < n && r.ok(); ++i) {
            TargetClassStat row;
            r.u8(&row.cls);
            r.u64(&row.execs);
            r.u64(&row.targetMispreds);
            reply.targetClasses.push_back(row);
        }
    }
    if (!r.ok())
        return Status::corruptData(
            std::string("malformed ") + messageTypeName(type) +
            " payload");
    *out = std::move(reply);
    return Status();
}

} // namespace bpnsp::serve
