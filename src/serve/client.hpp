/**
 * @file
 * Client side of bpnsp-serve-v1: a small blocking client (one
 * outstanding request per connection) plus a closed-loop load
 * generator for the latency bench and the soak test.
 *
 * The client is deliberately simple — connect, send one frame, block
 * for the matching reply — because every caller here (CLI, tests,
 * bench workers) wants request/reply semantics; concurrency comes from
 * running many clients, which is also what the server's batching is
 * designed to exploit.
 *
 * Retry contract (fleet mode): a RetryPolicy makes call() retry — with
 * bounded, jittered exponential backoff — when the failure is
 * *retryable* (UNAVAILABLE from a respawning/degraded shard, BUSY,
 * RESOURCE_EXHAUSTED admission rejection, or a transport error on a
 * request the client never saw answered) AND the request type is
 * idempotent. Every request this repo serves is a pure read or a
 * content-addressed materialization, so all request types qualify —
 * but the gate is structural (isIdempotentRequest), so a future
 * mutating type is excluded by default, not by vigilance. The server's
 * retry-after hint (reply.retryAfterMs) is a floor on the backoff.
 * serve.client.retries / serve.client.gave_up count what the policy
 * did; each give-up also bumps serve.client.gave_up.<code> with the
 * terminal wire code, so a soak can tell shed from corrupt from
 * timeout.
 *
 * Hedge contract (tail tolerance): with setHedgeMs(ms != 0), an
 * idempotent call that has not been answered after the observed p95
 * latency (floored by `ms`; `ms` alone until enough samples exist)
 * is re-sent on a *second* connection. The first reply wins; the
 * loser's connection gets a Cancel frame for its request id — so the
 * server can shed or cancel the duplicate before it costs more
 * worker time — and is closed. serve.hedges / serve.hedge_wins count
 * the decisions; both replies are bit-identical when they do race to
 * completion, because every hedged op is a pure read.
 */

#ifndef BPNSP_SERVE_CLIENT_HPP
#define BPNSP_SERVE_CLIENT_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "serve/protocol.hpp"
#include "util/status.hpp"

namespace bpnsp::serve {

/**
 * True for request types a client may safely re-send when it cannot
 * know whether the server executed the first attempt: pure reads and
 * content-addressed idempotent writes. The retry policy refuses to
 * retry anything else.
 */
bool isIdempotentRequest(MessageType type);

/** True for the reply codes that mean "retry later, it may clear". */
bool isRetryableCode(WireCode code);

/** Bounded, jittered exponential backoff for retryable failures. */
struct RetryPolicy
{
    unsigned maxAttempts = 1;    ///< total tries; 1 = never retry
    uint64_t baseBackoffMs = 10; ///< first retry's backoff scale
    uint64_t maxBackoffMs = 1000; ///< backoff cap
    uint64_t seed = 1;           ///< jitter stream seed
};

/** Blocking request/reply client over one connection. */
class ServeClient
{
  public:
    ServeClient() = default;
    ~ServeClient();

    ServeClient(const ServeClient &) = delete;
    ServeClient &operator=(const ServeClient &) = delete;

    /** Connect to a UNIX-domain socket path. */
    Status connectUnix(const std::string &socket_path);

    /** Connect to the loopback TCP listener. */
    Status connectTcp(int port);

    /**
     * Re-establish the last connectUnix/connectTcp endpoint (retry
     * path: a respawned worker means a fresh socket).
     */
    Status reconnect();

    bool connected() const { return fd >= 0; }

    void close();

    /**
     * Retry discipline for call() and the probes built on it. The
     * default policy (maxAttempts = 1) never retries, preserving
     * strict single-shot semantics for callers that do their own
     * failure handling.
     */
    void setRetryPolicy(const RetryPolicy &policy);
    const RetryPolicy &retryPolicy() const { return policy; }

    /**
     * Attempts beyond the first across this client's lifetime, and
     * calls abandoned with a retryable failure after the budget
     * (mirrors the serve.client.{retries,gave_up} counters).
     */
    uint64_t retriesObserved() const { return retriesTally; }
    uint64_t gaveUpObserved() const { return gaveUpTally; }

    /**
     * Hedged-request policy: 0 (default) disables hedging; non-zero
     * arms it for idempotent calls, as the floor (and cold-start
     * value) of the observed-p95 hedge delay.
     */
    void setHedgeMs(uint64_t ms) { hedgeMs = ms; }
    uint64_t hedgesObserved() const { return hedgesTally; }
    uint64_t hedgeWinsObserved() const { return hedgeWinsTally; }

    /**
     * Send `request` and block for the reply, retrying per the policy
     * when the request is idempotent and the failure retryable
     * (reconnecting first if the transport dropped). Protocol-level
     * failures (connection loss, malformed reply, id mismatch) come
     * back as a Status; application-level failures arrive as an Ok
     * Status with reply->code != WireCode::Ok.
     */
    Status call(const ServeRequest &request, ServeReply *reply);

    /** Liveness probe; fills `info` from the server's PingReply. */
    Status ping(std::string *info);

    /**
     * Live metric snapshot: a bpnsp-stats-v1 JSON document rendered by
     * the server's io thread (never queued behind workers, so it works
     * under full load and during a drain). `trace_id_out` (optional)
     * receives the server-assigned trace id — 0 from a pre-tracing
     * server.
     */
    Status stats(std::string *json, uint64_t *trace_id_out = nullptr);

    /**
     * Per-shard readiness probe (Health/HealthReply). A single-process
     * server answers one ready row; a fleet supervisor answers one row
     * per shard. Answered from the io thread, so it works under full
     * load and mid-drain.
     */
    Status health(std::vector<ShardHealth> *shards);

    /**
     * Send a request and do NOT wait for the reply. Used by the load
     * generator's randomized client kills (send, vanish) to prove the
     * server shrugs off peers that disappear mid-request.
     */
    Status fireAndForget(const ServeRequest &request);

  private:
    Status callOnce(const ServeRequest &request, ServeReply *reply);
    Status callHedged(const ServeRequest &request, ServeReply *reply);
    Status sendFrame(MessageType type, uint64_t request_id,
                     const std::vector<uint8_t> &payload);
    Status recvReply(uint64_t expect_id, ServeReply *reply);
    Status sendFrameFd(int dst_fd, MessageType type, uint64_t request_id,
                       const std::vector<uint8_t> &payload);
    Status recvReplyFd(int src_fd, uint64_t expect_id,
                       ServeReply *reply);
    int openEndpointFd(Status *status);
    uint64_t hedgeDelayMs() const;
    void recordLatencyMs(double ms);

    int fd = -1;
    uint64_t nextRequestId = 1;

    RetryPolicy policy;
    uint64_t jitterState = 0;   ///< lazily seeded from policy.seed
    uint64_t retriesTally = 0;
    uint64_t gaveUpTally = 0;

    uint64_t hedgeMs = 0;        ///< 0 = hedging off
    uint64_t hedgesTally = 0;
    uint64_t hedgeWinsTally = 0;

    // Sliding reservoir of recent reply latencies; once it has enough
    // samples the hedge delay tracks its p95 instead of the floor.
    std::vector<double> recentMs;
    size_t recentNext = 0;

    // Remembered endpoint for reconnect() (kUnset = never connected).
    enum class Endpoint { None, Unix, Tcp };
    Endpoint endpoint = Endpoint::None;
    std::string endpointPath;
    int endpointPort = 0;
};

/** Knobs of one closed-loop load-generation run. */
struct LoadGenConfig
{
    std::string socketPath;
    unsigned clients = 4;           ///< concurrent connections
    unsigned requestsPerClient = 32;
    std::string workload = "mcf_like";
    uint32_t inputIdx = 0;
    uint64_t instructions = 200000;
    std::vector<std::string> predictors = {"gshare"};
    uint64_t sliceRecords = 0;      ///< slice width (0 = whole trace)
    double killProb = 0.0;          ///< P(disconnect before reply)
    uint64_t seed = 1;              ///< drives slice + kill draws
    bool verify = false;            ///< check replies vs direct runs
    RetryPolicy retry;              ///< per-client retry discipline

    /**
     * Open-loop send rate per client in requests/second (0 = closed
     * loop: send, wait for the reply, send again). Open loop is what
     * makes oversubscription honest — a slow server does not slow the
     * arrival process, it grows the queue.
     */
    double openLoopHz = 0.0;

    /** Fraction of requests sent as interactive BranchStats reads. */
    double interactiveFraction = 0.0;

    /** Per-request deadline stamped on the wire (0 = none). */
    uint32_t deadlineMs = 0;

    /** Client hedging floor in ms (0 = off); see setHedgeMs(). */
    uint64_t hedgeMs = 0;
};

/** What the closed loop observed. */
struct LoadGenResult
{
    uint64_t attempted = 0;  ///< requests sent
    uint64_t ok = 0;         ///< Ok replies
    uint64_t rejected = 0;   ///< RESOURCE_EXHAUSTED / BUSY replies
    uint64_t errors = 0;     ///< other error replies
    uint64_t transport = 0;  ///< connection-level failures
    uint64_t killed = 0;     ///< deliberate client-side disconnects
    uint64_t mismatches = 0; ///< verify failures (must stay 0)
    uint64_t retried = 0;    ///< requests that needed >= 1 retry
    uint64_t retries = 0;    ///< total extra attempts
    uint64_t gaveUp = 0;     ///< retry budget exhausted, still failing
    uint64_t expired = 0;    ///< DEADLINE_EXCEEDED replies
    uint64_t hedges = 0;     ///< hedge requests issued
    uint64_t hedgeWins = 0;  ///< hedges that beat the primary
    double elapsedSeconds = 0.0;
    double p50Ms = 0.0;      ///< exact percentiles over all replies
    double p99Ms = 0.0;
    // Per-priority-class percentiles (0 when the class saw no Ok
    // reply): interactive = BranchStats, batch = everything else.
    double interactiveP50Ms = 0.0;
    double interactiveP99Ms = 0.0;
    double batchP50Ms = 0.0;
    double batchP99Ms = 0.0;

    /** 1.0 = every request answered on its first attempt. */
    double
    firstTryFraction() const
    {
        if (attempted == 0)
            return 1.0;
        return 1.0 - static_cast<double>(retried) /
                         static_cast<double>(attempted);
    }

    double
    requestsPerSecond() const
    {
        if (elapsedSeconds <= 0.0)
            return 0.0;
        return static_cast<double>(ok) / elapsedSeconds;
    }
};

/**
 * Run `clients` concurrent closed loops of Simulate requests against a
 * server and aggregate what they saw. With cfg.verify, every Ok reply
 * is checked bit-for-bit against a direct in-process run of the same
 * slice. Latency percentiles are exact (computed from the full sample
 * vector, not a histogram estimate).
 */
LoadGenResult runLoadGen(const LoadGenConfig &cfg);

} // namespace bpnsp::serve

#endif // BPNSP_SERVE_CLIENT_HPP
