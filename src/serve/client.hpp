/**
 * @file
 * Client side of bpnsp-serve-v1: a small blocking client (one
 * outstanding request per connection) plus a closed-loop load
 * generator for the latency bench and the soak test.
 *
 * The client is deliberately simple — connect, send one frame, block
 * for the matching reply — because every caller here (CLI, tests,
 * bench workers) wants request/reply semantics; concurrency comes from
 * running many clients, which is also what the server's batching is
 * designed to exploit.
 */

#ifndef BPNSP_SERVE_CLIENT_HPP
#define BPNSP_SERVE_CLIENT_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "serve/protocol.hpp"
#include "util/status.hpp"

namespace bpnsp::serve {

/** Blocking request/reply client over one connection. */
class ServeClient
{
  public:
    ServeClient() = default;
    ~ServeClient();

    ServeClient(const ServeClient &) = delete;
    ServeClient &operator=(const ServeClient &) = delete;

    /** Connect to a UNIX-domain socket path. */
    Status connectUnix(const std::string &socket_path);

    /** Connect to the loopback TCP listener. */
    Status connectTcp(int port);

    bool connected() const { return fd >= 0; }

    void close();

    /**
     * Send `request` and block for the reply. Protocol-level failures
     * (connection loss, malformed reply, id mismatch) come back as a
     * Status; application-level failures arrive as an Ok Status with
     * reply->code != WireCode::Ok.
     */
    Status call(const ServeRequest &request, ServeReply *reply);

    /** Liveness probe; fills `info` from the server's PingReply. */
    Status ping(std::string *info);

    /**
     * Live metric snapshot: a bpnsp-stats-v1 JSON document rendered by
     * the server's io thread (never queued behind workers, so it works
     * under full load and during a drain). `trace_id_out` (optional)
     * receives the server-assigned trace id — 0 from a pre-tracing
     * server.
     */
    Status stats(std::string *json, uint64_t *trace_id_out = nullptr);

    /**
     * Send a request and do NOT wait for the reply. Used by the load
     * generator's randomized client kills (send, vanish) to prove the
     * server shrugs off peers that disappear mid-request.
     */
    Status fireAndForget(const ServeRequest &request);

  private:
    Status sendFrame(MessageType type, uint64_t request_id,
                     const std::vector<uint8_t> &payload);
    Status recvReply(uint64_t expect_id, ServeReply *reply);
    Status readExact(uint8_t *out, size_t n);

    int fd = -1;
    uint64_t nextRequestId = 1;
};

/** Knobs of one closed-loop load-generation run. */
struct LoadGenConfig
{
    std::string socketPath;
    unsigned clients = 4;           ///< concurrent connections
    unsigned requestsPerClient = 32;
    std::string workload = "mcf_like";
    uint32_t inputIdx = 0;
    uint64_t instructions = 200000;
    std::vector<std::string> predictors = {"gshare"};
    uint64_t sliceRecords = 0;      ///< slice width (0 = whole trace)
    double killProb = 0.0;          ///< P(disconnect before reply)
    uint64_t seed = 1;              ///< drives slice + kill draws
    bool verify = false;            ///< check replies vs direct runs
};

/** What the closed loop observed. */
struct LoadGenResult
{
    uint64_t attempted = 0;  ///< requests sent
    uint64_t ok = 0;         ///< Ok replies
    uint64_t rejected = 0;   ///< RESOURCE_EXHAUSTED / BUSY replies
    uint64_t errors = 0;     ///< other error replies
    uint64_t transport = 0;  ///< connection-level failures
    uint64_t killed = 0;     ///< deliberate client-side disconnects
    uint64_t mismatches = 0; ///< verify failures (must stay 0)
    double elapsedSeconds = 0.0;
    double p50Ms = 0.0;      ///< exact percentiles over all replies
    double p99Ms = 0.0;

    double
    requestsPerSecond() const
    {
        if (elapsedSeconds <= 0.0)
            return 0.0;
        return static_cast<double>(ok) / elapsedSeconds;
    }
};

/**
 * Run `clients` concurrent closed loops of Simulate requests against a
 * server and aggregate what they saw. With cfg.verify, every Ok reply
 * is checked bit-for-bit against a direct in-process run of the same
 * slice. Latency percentiles are exact (computed from the full sample
 * vector, not a histogram estimate).
 */
LoadGenResult runLoadGen(const LoadGenConfig &cfg);

} // namespace bpnsp::serve

#endif // BPNSP_SERVE_CLIENT_HPP
