/**
 * @file
 * `bpnsp_served`'s engine: a concurrent trace/simulation query service
 * over the shared mmap'd trace store corpus.
 *
 * Architecture (see DESIGN.md "Serving"):
 *
 *  - One I/O thread owns accept() on the UNIX-domain listener (plus an
 *    optional loopback TCP listener behind a flag) and a poll() loop
 *    over every live connection. It assembles length-prefixed frames
 *    incrementally, validates magic/version/length *before* buffering
 *    a payload, verifies the payload checksum, and decodes requests.
 *    Malformed input of any kind — truncated frame, oversized length
 *    prefix, corrupt checksum, mid-frame disconnect — produces a clean
 *    Status, a best-effort Error reply, and a closed connection; never
 *    a crash.
 *  - Admission is cost-aware and fair (DESIGN.md "Overload"): each
 *    request gets an estimated cost (work units × op-class ns/unit,
 *    refined online from observed execute times, × a cold/warm
 *    reader-cache multiplier) and is queued into a per-client
 *    (SO_PEERCRED) weighted deficit queue at one of two priorities
 *    (interactive BranchStats above batch Simulate/Materialize/H2p).
 *    When the queue is full by count (queueDepth) or by estimated
 *    work (maxInflightCostMs) the scheduler sheds from the heaviest
 *    over-quota client first — newest batch work first — answering
 *    RESOURCE_EXHAUSTED with a retry-after hint (serve.rejected,
 *    serve.shed); backpressure stays explicit and memory bounded
 *    under any offered load. Requests whose deadline can no longer be
 *    met are swept out with DEADLINE_EXCEEDED before consuming worker
 *    time (serve.expired), and a Cancel frame sheds or cancels its
 *    target (serve.cancels) — the hedge-loser reclamation path.
 *  - A fixed pool of worker threads pops requests. A worker that pops
 *    a Simulate request batches it with queued Simulate requests for
 *    the *same trace slice* (same workload/input/instructions/[a,b),
 *    no deadline): one replay pass over the shared mmap'd store drives
 *    all of their predictor sims through a fanout (serve.batch_size).
 *    The in-memory decoded-chunk LRU (tracestore/chunk_cache.hpp)
 *    sits below this, so even unbatchable requests on a hot trace skip
 *    the varint decode.
 *  - Each request runs under its own CancelToken carrying the
 *    client-supplied deadline, parented to the server's stop token —
 *    deliberately *not* to the process-global signal token, so a
 *    SIGTERM drain lets in-flight requests finish while the listener
 *    is already closed. stop() fires the stop token for a hard cut.
 *  - Cold traces are materialized on demand through the canonical
 *    runWorkloadTrace() path (recorded + atomically published to the
 *    on-disk cache), serialized per digest so concurrent requests for
 *    the same cold trace generate it once.
 *
 * Thread-safety: start(), drain(), and stop() are for the owning
 * thread; everything else is internal.
 */

#ifndef BPNSP_SERVE_SERVER_HPP
#define BPNSP_SERVE_SERVER_HPP

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "serve/protocol.hpp"
#include "tracestore/cache.hpp"
#include "tracestore/store.hpp"
#include "util/cancel.hpp"
#include "util/status.hpp"
#include "workloads/workload.hpp"

namespace bpnsp::serve {

/** Everything a server needs. */
struct ServeConfig
{
    std::string socketPath;    ///< UNIX-domain socket (required)
    int tcpPort = 0;           ///< optional loopback TCP (0 = off)
    unsigned workers = 4;      ///< fixed worker pool size
    size_t queueDepth = 64;    ///< bounded admission queue
    unsigned maxBatch = 8;     ///< max Simulate requests per batch
    std::string traceCacheDir; ///< on-disk corpus (required)
    size_t maxOpenReaders = 32; ///< mmap'd reader LRU cap

    /**
     * Cost-aware admission bound: the maximum *estimated* queued plus
     * in-flight work, in milliseconds of predicted execute time
     * (0 = count-only admission via queueDepth). With it set, 64
     * cached stats queries and 2 cold Simulates stop being "the same"
     * queue pressure.
     */
    uint64_t maxInflightCostMs = 0;

    /**
     * Fair-share quantum weight: how much estimated work (multiples
     * of a 10 ms quantum) each client's deficit counter earns per
     * scheduling round. Larger values trade fairness granularity for
     * fewer round-robin passes.
     */
    unsigned clientWeight = 1;

    /**
     * Shed victim selection when admission overflows: "heaviest"
     * (default) sheds the newest batch work of the client holding the
     * most estimated queued work — the abusive client absorbs the
     * sheds; "tail" always rejects the arriving request (the pre-
     * overload behavior).
     */
    std::string shedPolicy = "heaviest";

    /**
     * Slow-request threshold in milliseconds (0 = off). A request
     * whose accept-to-reply wall time crosses it is counted in
     * `serve.slow_requests` and logged as a structured
     * `serve.slow_request` warn line carrying its trace id and — when
     * span recording is on — its whole span tree, offsets relative to
     * admission.
     */
    uint32_t slowMs = 0;
};

/** The serving engine. */
class ServeServer
{
  public:
    explicit ServeServer(ServeConfig config);
    ~ServeServer();

    ServeServer(const ServeServer &) = delete;
    ServeServer &operator=(const ServeServer &) = delete;

    /**
     * Bind, listen, and spawn the I/O thread plus the worker pool.
     * InvalidArgument for a missing socket path or trace cache dir,
     * IoError when the OS refuses the socket.
     */
    Status start();

    /**
     * Graceful drain: close the listeners (no new connections, no new
     * requests), let the queue empty and in-flight requests finish,
     * then shut the pool down and close every connection. Idempotent.
     */
    void drain();

    /**
     * Hard stop: fire the stop token (cancelling in-flight requests at
     * their next poll), then drain the machinery. Idempotent.
     */
    void stop();

    bool running() const { return started && !stopped; }

    const ServeConfig &config() const { return cfg; }

    /** The bound TCP port (0 when TCP is off); valid after start(). */
    int boundTcpPort() const { return tcpPortBound; }

  private:
    struct Conn;
    struct Pending;
    struct PeerQueue;

    // --- I/O side (io thread) ---
    void ioLoop();
    void acceptOne(int listen_fd);
    void readConn(const std::shared_ptr<Conn> &conn);
    void parseFrames(const std::shared_ptr<Conn> &conn);
    void admit(const std::shared_ptr<Conn> &conn,
               const FrameHeader &header, ServeRequest request);
    void handleCancel(const std::shared_ptr<Conn> &conn,
                      const FrameHeader &header,
                      const ServeRequest &request);

    // --- admission scheduler (queueMu held unless noted) ---
    void estimateCost(Pending *pending);
    void noteObservedCost(MessageType type, uint64_t units,
                          uint64_t exec_ns, bool warm);
    PeerQueue &peerQueueFor(uint64_t peer);
    bool overCapacityLocked(uint64_t arriving_cost_ns) const;
    uint32_t retryAfterMsLocked() const;
    void removeQueuedLocked(const Pending &pending);
    void sweepExpiredLocked(std::vector<Pending> *expired);
    bool popNextLocked(Pending *out);
    void updateQueueGaugesLocked();

    // --- worker side ---
    void workerLoop();
    std::vector<Pending> popBatch();
    void execute(std::vector<Pending> batch);
    void executeSimulateBatch(std::vector<Pending> &batch);
    ServeReply executeBranchStats(const ServeRequest &request);
    ServeReply executeH2p(const ServeRequest &request);
    ServeReply executeMaterialize(const ServeRequest &request);

    // --- shared helpers ---
    void sendReply(const std::shared_ptr<Conn> &conn,
                   uint64_t request_id, const ServeReply &reply);
    void sendError(const std::shared_ptr<Conn> &conn,
                   uint64_t request_id, WireCode code,
                   const std::string &message, uint64_t trace_id = 0,
                   uint32_t retry_after_ms = 0);
    void logSlowRequest(const Pending &pending, uint64_t wall_ns);
    void closeConn(const std::shared_ptr<Conn> &conn);

    /** Non-fatal workload lookup (nullptr when unknown). */
    const Workload *findServableWorkload(const std::string &name);

    /** Validate the common request fields; Ok or InvalidArgument. */
    Status validateRequest(const ServeRequest &request,
                           const Workload **workload_out);

    /**
     * The open reader for (workload, input, instructions),
     * materializing and publishing the trace first when cold.
     */
    std::shared_ptr<TraceStoreReader>
    ensureReader(const Workload &workload, const ServeRequest &request,
                 Status *status);

    void dropReader(const std::string &digest);

    ServeConfig cfg;
    bool started = false;
    bool stopped = false;
    int tcpPortBound = 0;

    std::vector<int> listenFds;
    int wakePipe[2] = {-1, -1};   ///< self-pipe to nudge poll()

    std::thread ioThread;
    std::vector<std::thread> workerThreads;

    std::atomic<bool> acceptingFlag{true};
    std::atomic<bool> quitFlag{false};     ///< workers + io exit
    CancelToken stopToken;                 ///< in-flight hard cut

    // Connections are owned by the io thread; workers hold shared_ptrs
    // only long enough to write replies.
    std::vector<std::shared_ptr<Conn>> conns;

    std::mutex queueMu;
    std::condition_variable queueCv;       ///< workers wait here
    std::condition_variable idleCv;        ///< drain() waits here

    // Per-client weighted deficit queues (the admission queue). All
    // scheduler state below queueMu. Peers with no queued work are
    // dropped from the rotation (their deficit resets), so the deque
    // stays as small as the set of clients with work in flight.
    std::deque<PeerQueue> peerQueues;
    size_t queuedCount = 0;                ///< requests across peers
    uint64_t queuedCostNs = 0;             ///< estimated queued work
    uint64_t inflightCostNs = 0;           ///< estimated popped work
    size_t rrInteractive = 0;              ///< round-robin cursors
    size_t rrBatch = 0;
    unsigned inFlight = 0;                 ///< popped, not yet replied

    // In-flight cancel registry: (conn id, request id) -> the
    // request's cancel token, registered at pop for solo requests
    // (batch members cannot be cancelled individually).
    std::map<std::pair<uint64_t, uint64_t>,
             std::shared_ptr<CancelToken>>
        inflightTokens;

    // Online cost model: per-op-class EWMA of observed execute ns per
    // work unit (x16 fixed point), seeded with priors and refined
    // from warm executions only. Atomics: estimateCost reads on the
    // io thread while workers refine.
    std::atomic<uint64_t> costNsPerUnitX16[4];
    std::atomic<uint64_t> costSamples[4] = {};

    std::mutex readersMu;
    struct ReaderEntry
    {
        std::shared_ptr<TraceStoreReader> reader;
        uint64_t lastUse = 0;
    };
    std::map<std::string, ReaderEntry> readers;   ///< digest -> entry
    uint64_t readerClock = 0;
    std::map<std::string, std::shared_ptr<std::mutex>> genMutexes;

    std::unique_ptr<TraceCache> cache;
    std::vector<Workload> workloadsCatalog;       ///< loaded at start

    // Resolved synth:<profile>:<seed> workloads, cached by name.
    // std::map gives pointer stability across inserts, which is what
    // lets findServableWorkload hand out long-lived Workload*.
    std::mutex synthMu;
    std::map<std::string, Workload> synthCatalog;
};

} // namespace bpnsp::serve

#endif // BPNSP_SERVE_SERVER_HPP
