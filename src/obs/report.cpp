#include "obs/report.hpp"

#include <atomic>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <sstream>

#include "obs/metrics.hpp"
#include "obs/snapshot.hpp"
#include "obs/trace.hpp"
#include "util/cancel.hpp"
#include "util/logging.hpp"
#include "util/options.hpp"
#include "util/signals.hpp"
#include "util/stats.hpp"

namespace bpnsp::obs {

namespace {

std::mutex gReportMutex;
std::string gReportPath;
std::string gTraceOutPath;
bool gAtExitInstalled = false;
bool gTraceAtExitInstalled = false;
std::atomic<uint64_t> gProgressInterval{0};

// Signal-hook state. The hook cannot take gReportMutex (the
// interrupted thread might hold it), so the report path is mirrored
// into a fixed buffer it can read lock-free.
char gSignalReportPath[4096] = {};
char gSignalTracePath[4096] = {};

/** JSON string escaping (quotes, backslash, control characters). */
std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size() + 2);
    for (const char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\r':
            out += "\\r";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(c));
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

/** Format a double as a JSON number (finite; %.9g keeps precision). */
std::string
jsonNumber(double v)
{
    if (!(v == v) || v > 1e308 || v < -1e308)   // NaN or +-inf
        return "null";
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.9g", v);
    // %.9g may produce "1e+06"-style output, which is valid JSON.
    return buf;
}

std::string
quoted(const std::string &s)
{
    return "\"" + jsonEscape(s) + "\"";
}

void
writeReportAtExit()
{
    std::string path;
    {
        std::lock_guard<std::mutex> lock(gReportMutex);
        path = gReportPath;
    }
    if (!path.empty())
        writeRunReport(path);
}

void
writeTraceAtExit()
{
    std::string path;
    {
        std::lock_guard<std::mutex> lock(gReportMutex);
        path = gTraceOutPath;
    }
    if (path.empty())
        return;
    if (Status st = TraceRecorder::instance().exportChromeTrace(path);
        !st.ok())
        warn("cannot write trace: ", st.str());
}

/**
 * First-signal hook registered with util/signals: flush the pending
 * run report before the shared handler re-raises with the default
 * disposition, so the exit status stays honest.
 *
 * The report flush is deliberately not async-signal-safe (it
 * allocates and formats); this is the standard last-gasp trade every
 * profiler/simulator makes: the alternative is Ctrl-C silently
 * discarding an hours-long run's telemetry. The one real hazard —
 * self-deadlock on gReportMutex — is avoided by reading the path from
 * the lock-free mirror and the registry's snapshot locks being held
 * only for short, signal-free critical sections.
 */
void
reportFlushHook(int /*sig*/)
{
    if (gSignalReportPath[0] != '\0')
        writeRunReport(gSignalReportPath);
    if (gSignalTracePath[0] != '\0')
        (void)TraceRecorder::instance().exportChromeTrace(
            gSignalTracePath);
}

/**
 * Emit the "counters"/"gauges"/"histograms" sections shared by the
 * run report and the live Stats snapshot (no trailing comma or
 * newline — the caller closes the document). Histograms carry the
 * exact quantile contract: p50/p90/p99/p999 computed by the
 * histogram itself, so no consumer ever re-derives quantiles from
 * raw log2 buckets.
 */
void
appendRegistrySections(std::ostringstream &oss)
{
    Registry &reg = Registry::instance();

    oss << "  \"counters\": {";
    bool first = true;
    for (const auto &[name, value] : reg.counters()) {
        oss << (first ? "\n" : ",\n") << "    " << quoted(name) << ": "
            << value;
        first = false;
    }
    oss << "\n  },\n";

    oss << "  \"gauges\": {";
    first = true;
    for (const auto &[name, value] : reg.gauges()) {
        oss << (first ? "\n" : ",\n") << "    " << quoted(name) << ": "
            << jsonNumber(value);
        first = false;
    }
    oss << (first ? "" : "\n  ") << "},\n";

    oss << "  \"histograms\": {";
    first = true;
    for (const auto &[name, s] : reg.histograms()) {
        oss << (first ? "\n" : ",\n") << "    " << quoted(name) << ": ";
        if (s.empty()) {
            // An empty histogram is not one that observed zeros.
            oss << "{\"count\":0,\"sum\":0,\"min\":null,\"max\":null,"
                   "\"mean\":null,\"p50\":null,\"p90\":null,"
                   "\"p99\":null,\"p999\":null}";
        } else {
            oss << "{\"count\":" << s.count << ",\"sum\":" << s.sum
                << ",\"min\":" << s.min << ",\"max\":" << s.max
                << ",\"mean\":" << jsonNumber(s.mean)
                << ",\"p50\":" << jsonNumber(s.p50)
                << ",\"p90\":" << jsonNumber(s.p90)
                << ",\"p99\":" << jsonNumber(s.p99)
                << ",\"p999\":" << jsonNumber(s.p999) << "}";
        }
        first = false;
    }
    oss << (first ? "" : "\n  ") << "}";
}

} // namespace

std::string
gitDescribe()
{
#ifdef BPNSP_GIT_DESCRIBE
    return BPNSP_GIT_DESCRIBE;
#else
    return "unknown";
#endif
}

std::string
statsJson(const OnlineStats &stats)
{
    std::ostringstream oss;
    oss << "{\"count\":" << stats.count();
    if (stats.empty()) {
        oss << ",\"sum\":0,\"min\":null,\"max\":null,\"mean\":null,"
               "\"stddev\":null}";
        return oss.str();
    }
    oss << ",\"sum\":" << jsonNumber(stats.sum())
        << ",\"min\":" << jsonNumber(stats.min())
        << ",\"max\":" << jsonNumber(stats.max())
        << ",\"mean\":" << jsonNumber(stats.mean())
        << ",\"stddev\":" << jsonNumber(stats.stddev()) << "}";
    return oss.str();
}

std::string
renderRunReport()
{
    Registry &reg = Registry::instance();

    // Guarantee the contract keys exist even in runs that never touch
    // the instrumented paths (e.g. a bench invoked with --help-ish
    // flows): touching a counter registers it at value 0.
    for (const char *name :
         {"run.instructions", "tracestore.cache.hits",
          "tracestore.cache.misses", "bp.predictions",
          "bp.mispredicts",
          // Robustness counters (schema_rev 2): consumers key off
          // these to detect runs that healed themselves.
          "tracestore.replay.chunk_retries",
          "tracestore.cache.quarantined", "core.runner.degraded_runs",
          "faultsim.injected",
          // Campaign/cancellation counters (schema_rev 3): every
          // report proves whether the run was a campaign, whether it
          // resumed, and whether any delivery loop was cancelled.
          // Invariant checked downstream: cells_done + cells_failed +
          // cells_skipped == cells_total once a campaign drains
          // (campaign.interrupted == 0).
          "campaign.cells_total", "campaign.cells_done",
          "campaign.cells_failed", "campaign.cells_retried",
          "campaign.cells_skipped", "campaign.resumed",
          "campaign.interrupted", "core.runner.cancelled",
          // Serving counters (schema_rev 4): every report proves
          // whether the run served requests, and the admission books
          // must balance — serve.accepted + serve.rejected ==
          // serve.requests once a server drains, and serve.completed
          // never exceeds serve.accepted.
          "serve.requests", "serve.accepted", "serve.rejected",
          "serve.completed", "serve.frames_corrupt",
          // Synthesis counters (schema_rev 5): every report proves
          // whether the run fitted profiles or generated programs,
          // and whether any generated program failed validation.
          "synth.profiles_fitted", "synth.branches_fitted",
          "synth.programs_generated", "synth.validate_failures",
          // Observability counters (schema_rev 6): every report
          // proves whether tracing was on (and how lossy the span
          // rings were) and whether the daemon answered live Stats
          // requests.
          "obs.spans_recorded", "obs.spans_dropped",
          "serve.stats_requests",
          // Fleet/retry counters (schema_rev 7): every report proves
          // whether the run supervised a worker fleet (and how it
          // fared) and whether its clients needed retries. Invariant
          // checked downstream: serve.fleet.respawns never exceeds
          // serve.fleet.worker_deaths — a respawn only ever answers a
          // death.
          "serve.fleet.worker_deaths", "serve.fleet.respawns",
          "serve.fleet.breaker_trips", "serve.client.retries",
          "serve.client.gave_up",
          // Overload counters (schema_rev 8): every report proves how
          // the run behaved past saturation — fair-share sheds,
          // deadline expiries swept before execution, and hedged
          // requests (wins = the duplicate answered first).
          // Invariants checked downstream: serve.hedge_wins never
          // exceeds serve.hedges, and serve.shed + serve.accepted
          // never exceeds serve.requests (a shed request is never
          // also handed to a worker).
          "serve.shed", "serve.expired", "serve.hedges",
          "serve.hedge_wins",
          // Frontend counters (schema_rev 9): every report proves what
          // the fetch engine cost — BTB misses, RAS overflows,
          // indirect-target mispredicts, and the FTQ-unabsorbed stall
          // cycles. All zero in runs that never wire a FrontendModel
          // (the frontend is opt-in per simulation).
          "frontend.btb_miss", "frontend.ras_over",
          "frontend.ind_mispred", "frontend.ftq_stall_cycles"}) {
        reg.counter(name);
    }

    // schema_rev bumps additively within the v1 schema: rev 2 added
    // the robustness counter contract, rev 3 the campaign /
    // cancellation contract, rev 4 the serving contract, rev 5 the
    // synthesis contract, rev 6 the tracing/introspection contract
    // plus the optional "snapshots" time-series section and exact
    // histogram quantiles (p999), rev 7 adds the fleet-supervision /
    // client-retry contract, rev 8 the overload contract
    // (shed / expired / hedges / hedge_wins), rev 9 the frontend
    // contract above (btb_miss / ras_over / ind_mispred /
    // ftq_stall_cycles) — nothing is ever renamed, so v1 consumers
    // keep parsing and rev-aware consumers know the new keys are
    // guaranteed present.
    std::ostringstream oss;
    oss << "{\n  \"schema\": \"bpnsp-run-report-v1\",\n"
        << "  \"schema_rev\": 9,\n  \"run\": {\n";
    for (const auto &[key, value] : reg.runFields())
        oss << "    " << quoted(key) << ": " << quoted(value) << ",\n";
    oss << "    \"git\": " << quoted(gitDescribe()) << ",\n"
        << "    \"obs_detail\": "
#ifdef BPNSP_OBS_DETAIL
        << "true"
#else
        << "false"
#endif
        << ",\n    \"instructions\": "
        << reg.counterValue("run.instructions") << ",\n"
        << "    \"wall_seconds\": " << jsonNumber(reg.wallSeconds())
        << "\n  },\n";

    appendRegistrySections(oss);

    // Time-series section (schema_rev 6), present only when the
    // snapshot sampler ran: the ring of interval samples that turns
    // one aggregate p99 into a p99-over-time curve.
    SnapshotSampler &sampler = SnapshotSampler::instance();
    if (sampler.totalSamples() > 0) {
        oss << ",\n  \"snapshots\": {\n"
            << "    \"period_ms\": " << sampler.periodMs() << ",\n"
            << "    \"total\": " << sampler.totalSamples() << ",\n"
            << "    \"samples\": [";
        bool firstSample = true;
        for (const Snapshot &s : sampler.samples()) {
            oss << (firstSample ? "\n" : ",\n") << "      "
                << snapshotJson(s);
            firstSample = false;
        }
        oss << "\n    ]\n  }";
    }
    oss << "\n}\n";
    return oss.str();
}

std::string
snapshotJson(const Snapshot &s)
{
    std::ostringstream oss;
    oss << "{\"t_s\":" << jsonNumber(s.tSeconds) << ",\"counters\":{";
    bool first = true;
    for (const auto &[name, delta] : s.counterDeltas) {
        oss << (first ? "" : ",") << quoted(name) << ":" << delta;
        first = false;
    }
    oss << "},\"gauges\":{";
    first = true;
    for (const auto &[name, value] : s.gauges) {
        oss << (first ? "" : ",") << quoted(name) << ":"
            << jsonNumber(value);
        first = false;
    }
    oss << "},\"histograms\":{";
    first = true;
    for (const Snapshot::HistWindow &w : s.histograms) {
        oss << (first ? "" : ",") << quoted(w.name)
            << ":{\"count\":" << w.count
            << ",\"p50\":" << jsonNumber(w.p50)
            << ",\"p90\":" << jsonNumber(w.p90)
            << ",\"p99\":" << jsonNumber(w.p99)
            << ",\"p999\":" << jsonNumber(w.p999) << "}";
        first = false;
    }
    oss << "}}";
    return oss.str();
}

std::string
renderStatsSnapshotJson()
{
    Registry &reg = Registry::instance();
    std::ostringstream oss;
    oss << "{\n  \"schema\": \"bpnsp-stats-v1\",\n"
        << "  \"git\": " << quoted(gitDescribe()) << ",\n"
        << "  \"wall_seconds\": " << jsonNumber(reg.wallSeconds())
        << ",\n";
    appendRegistrySections(oss);
    oss << "\n}\n";
    return oss.str();
}

bool
writeRunReport(const std::string &path)
{
    const std::string doc = renderRunReport();
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
        warn("cannot open metrics report for writing: ", path);
        return false;
    }
    const bool ok =
        std::fwrite(doc.data(), 1, doc.size(), f) == doc.size();
    if (std::fclose(f) != 0 || !ok) {
        warn("short write to metrics report: ", path);
        return false;
    }
    return true;
}

void
setReportPath(const std::string &path)
{
    std::lock_guard<std::mutex> lock(gReportMutex);
    gReportPath = path;
    std::snprintf(gSignalReportPath, sizeof(gSignalReportPath), "%s",
                  path.c_str());
    if (!path.empty() && !gAtExitInstalled) {
        gAtExitInstalled = true;
        std::atexit(writeReportAtExit);
    }
}

void
setTracePath(const std::string &path)
{
    std::lock_guard<std::mutex> lock(gReportMutex);
    gTraceOutPath = path;
    std::snprintf(gSignalTracePath, sizeof(gSignalTracePath), "%s",
                  path.c_str());
    TraceRecorder::instance().setEnabled(!path.empty());
    if (!path.empty() && !gTraceAtExitInstalled) {
        gTraceAtExitInstalled = true;
        std::atexit(writeTraceAtExit);
    }
}

void
installSignalHandlers()
{
    signals::setFirstSignalHook(reportFlushHook);
    signals::installHandlers();
}

void
setSignalDrainMode(bool graceful)
{
    signals::setDrainMode(graceful);
}

std::string
reportPath()
{
    std::lock_guard<std::mutex> lock(gReportMutex);
    return gReportPath;
}

void
setProgressInterval(uint64_t instructions)
{
    gProgressInterval.store(instructions, std::memory_order_relaxed);
}

uint64_t
progressInterval()
{
    return gProgressInterval.load(std::memory_order_relaxed);
}

void
configureFromOptions(const OptionParser &opts)
{
    Registry::instance().setRunField("binary", opts.binaryName());
    if (const std::string &path = opts.getString("metrics-out");
        !path.empty()) {
        setReportPath(path);
        // With a report at stake, Ctrl-C must flush it, not lose it.
        installSignalHandlers();
    }
    if (opts.getFlag("progress"))
        setProgressInterval(kDefaultProgressInterval);
    if (const std::string &path = opts.getString("trace-out");
        !path.empty()) {
        setTracePath(path);
        // Like the run report: a Ctrl-C'd run keeps its trace.
        installSignalHandlers();
    }
    if (const int64_t ms = opts.getInt("snapshot-ms"); ms > 0)
        SnapshotSampler::instance().start(static_cast<uint64_t>(ms));
}

} // namespace bpnsp::obs
