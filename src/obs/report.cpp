#include "obs/report.hpp"

#include <atomic>
#include <cinttypes>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <sstream>

#include "obs/metrics.hpp"
#include "util/cancel.hpp"
#include "util/logging.hpp"
#include "util/options.hpp"
#include "util/stats.hpp"

namespace bpnsp::obs {

namespace {

std::mutex gReportMutex;
std::string gReportPath;
bool gAtExitInstalled = false;
std::atomic<uint64_t> gProgressInterval{0};

// Signal-handler state. The handler cannot take gReportMutex (the
// interrupted thread might hold it), so the report path is mirrored
// into a fixed buffer it can read lock-free.
std::atomic<int> gSignalCount{0};
std::atomic<bool> gGracefulDrain{false};
std::atomic<bool> gHandlersInstalled{false};
char gSignalReportPath[4096] = {};

/** JSON string escaping (quotes, backslash, control characters). */
std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size() + 2);
    for (const char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\r':
            out += "\\r";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(c));
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

/** Format a double as a JSON number (finite; %.9g keeps precision). */
std::string
jsonNumber(double v)
{
    if (!(v == v) || v > 1e308 || v < -1e308)   // NaN or +-inf
        return "null";
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.9g", v);
    // %.9g may produce "1e+06"-style output, which is valid JSON.
    return buf;
}

std::string
quoted(const std::string &s)
{
    return "\"" + jsonEscape(s) + "\"";
}

void
writeReportAtExit()
{
    std::string path;
    {
        std::lock_guard<std::mutex> lock(gReportMutex);
        path = gReportPath;
    }
    if (!path.empty())
        writeRunReport(path);
}

/**
 * First SIGINT/SIGTERM: fire the global cancel token and — unless a
 * supervisor owns the drain — flush the run report and die with the
 * signal's default disposition so the exit status is honest. Second
 * signal: force-exit immediately.
 *
 * The report flush is deliberately not async-signal-safe (it
 * allocates and formats); this is the standard last-gasp trade every
 * profiler/simulator makes: the alternative is Ctrl-C silently
 * discarding an hours-long run's telemetry. The one real hazard —
 * self-deadlock on gReportMutex — is avoided by reading the path from
 * the lock-free mirror and the registry's snapshot locks being held
 * only for short, signal-free critical sections.
 */
void
signalHandler(int sig)
{
    const int nth = gSignalCount.fetch_add(1,
                                           std::memory_order_relaxed);
    if (nth >= 1) {
        // Second signal: the user means *now*.
        std::_Exit(128 + sig);
    }
    globalCancelToken().requestCancel(CancelCause::Signal);
    if (gGracefulDrain.load(std::memory_order_relaxed))
        return;   // a supervisor drains, flushes, and exits
    if (gSignalReportPath[0] != '\0')
        writeRunReport(gSignalReportPath);
    std::signal(sig, SIG_DFL);
    std::raise(sig);
}

} // namespace

std::string
gitDescribe()
{
#ifdef BPNSP_GIT_DESCRIBE
    return BPNSP_GIT_DESCRIBE;
#else
    return "unknown";
#endif
}

std::string
statsJson(const OnlineStats &stats)
{
    std::ostringstream oss;
    oss << "{\"count\":" << stats.count();
    if (stats.empty()) {
        oss << ",\"sum\":0,\"min\":null,\"max\":null,\"mean\":null,"
               "\"stddev\":null}";
        return oss.str();
    }
    oss << ",\"sum\":" << jsonNumber(stats.sum())
        << ",\"min\":" << jsonNumber(stats.min())
        << ",\"max\":" << jsonNumber(stats.max())
        << ",\"mean\":" << jsonNumber(stats.mean())
        << ",\"stddev\":" << jsonNumber(stats.stddev()) << "}";
    return oss.str();
}

std::string
renderRunReport()
{
    Registry &reg = Registry::instance();

    // Guarantee the contract keys exist even in runs that never touch
    // the instrumented paths (e.g. a bench invoked with --help-ish
    // flows): touching a counter registers it at value 0.
    for (const char *name :
         {"run.instructions", "tracestore.cache.hits",
          "tracestore.cache.misses", "bp.predictions",
          "bp.mispredicts",
          // Robustness counters (schema_rev 2): consumers key off
          // these to detect runs that healed themselves.
          "tracestore.replay.chunk_retries",
          "tracestore.cache.quarantined", "core.runner.degraded_runs",
          "faultsim.injected",
          // Campaign/cancellation counters (schema_rev 3): every
          // report proves whether the run was a campaign, whether it
          // resumed, and whether any delivery loop was cancelled.
          // Invariant checked downstream: cells_done + cells_failed +
          // cells_skipped == cells_total once a campaign drains
          // (campaign.interrupted == 0).
          "campaign.cells_total", "campaign.cells_done",
          "campaign.cells_failed", "campaign.cells_retried",
          "campaign.cells_skipped", "campaign.resumed",
          "campaign.interrupted", "core.runner.cancelled"}) {
        reg.counter(name);
    }

    // schema_rev bumps additively within the v1 schema: rev 2 added
    // the robustness counter contract, rev 3 adds the campaign /
    // cancellation contract above — nothing is ever renamed, so v1
    // consumers keep parsing and rev-aware consumers know the new
    // keys are guaranteed present.
    std::ostringstream oss;
    oss << "{\n  \"schema\": \"bpnsp-run-report-v1\",\n"
        << "  \"schema_rev\": 3,\n  \"run\": {\n";
    for (const auto &[key, value] : reg.runFields())
        oss << "    " << quoted(key) << ": " << quoted(value) << ",\n";
    oss << "    \"git\": " << quoted(gitDescribe()) << ",\n"
        << "    \"obs_detail\": "
#ifdef BPNSP_OBS_DETAIL
        << "true"
#else
        << "false"
#endif
        << ",\n    \"instructions\": "
        << reg.counterValue("run.instructions") << ",\n"
        << "    \"wall_seconds\": " << jsonNumber(reg.wallSeconds())
        << "\n  },\n";

    oss << "  \"counters\": {";
    bool first = true;
    for (const auto &[name, value] : reg.counters()) {
        oss << (first ? "\n" : ",\n") << "    " << quoted(name) << ": "
            << value;
        first = false;
    }
    oss << "\n  },\n";

    oss << "  \"gauges\": {";
    first = true;
    for (const auto &[name, value] : reg.gauges()) {
        oss << (first ? "\n" : ",\n") << "    " << quoted(name) << ": "
            << jsonNumber(value);
        first = false;
    }
    oss << (first ? "" : "\n  ") << "},\n";

    oss << "  \"histograms\": {";
    first = true;
    for (const auto &[name, s] : reg.histograms()) {
        oss << (first ? "\n" : ",\n") << "    " << quoted(name) << ": ";
        if (s.empty()) {
            // An empty histogram is not one that observed zeros.
            oss << "{\"count\":0,\"sum\":0,\"min\":null,\"max\":null,"
                   "\"mean\":null,\"p50\":null,\"p90\":null,"
                   "\"p99\":null}";
        } else {
            oss << "{\"count\":" << s.count << ",\"sum\":" << s.sum
                << ",\"min\":" << s.min << ",\"max\":" << s.max
                << ",\"mean\":" << jsonNumber(s.mean)
                << ",\"p50\":" << jsonNumber(s.p50)
                << ",\"p90\":" << jsonNumber(s.p90)
                << ",\"p99\":" << jsonNumber(s.p99) << "}";
        }
        first = false;
    }
    oss << (first ? "" : "\n  ") << "}\n}\n";
    return oss.str();
}

bool
writeRunReport(const std::string &path)
{
    const std::string doc = renderRunReport();
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
        warn("cannot open metrics report for writing: ", path);
        return false;
    }
    const bool ok =
        std::fwrite(doc.data(), 1, doc.size(), f) == doc.size();
    if (std::fclose(f) != 0 || !ok) {
        warn("short write to metrics report: ", path);
        return false;
    }
    return true;
}

void
setReportPath(const std::string &path)
{
    std::lock_guard<std::mutex> lock(gReportMutex);
    gReportPath = path;
    std::snprintf(gSignalReportPath, sizeof(gSignalReportPath), "%s",
                  path.c_str());
    if (!path.empty() && !gAtExitInstalled) {
        gAtExitInstalled = true;
        std::atexit(writeReportAtExit);
    }
}

void
installSignalHandlers()
{
    bool expected = false;
    if (!gHandlersInstalled.compare_exchange_strong(expected, true))
        return;
    struct sigaction sa;
    std::memset(&sa, 0, sizeof(sa));
    sa.sa_handler = signalHandler;
    sigemptyset(&sa.sa_mask);
    ::sigaction(SIGINT, &sa, nullptr);
    ::sigaction(SIGTERM, &sa, nullptr);
}

void
setSignalDrainMode(bool graceful)
{
    gGracefulDrain.store(graceful, std::memory_order_relaxed);
}

std::string
reportPath()
{
    std::lock_guard<std::mutex> lock(gReportMutex);
    return gReportPath;
}

void
setProgressInterval(uint64_t instructions)
{
    gProgressInterval.store(instructions, std::memory_order_relaxed);
}

uint64_t
progressInterval()
{
    return gProgressInterval.load(std::memory_order_relaxed);
}

void
configureFromOptions(const OptionParser &opts)
{
    Registry::instance().setRunField("binary", opts.binaryName());
    if (const std::string &path = opts.getString("metrics-out");
        !path.empty()) {
        setReportPath(path);
        // With a report at stake, Ctrl-C must flush it, not lose it.
        installSignalHandlers();
    }
    if (opts.getFlag("progress"))
        setProgressInterval(kDefaultProgressInterval);
}

} // namespace bpnsp::obs
