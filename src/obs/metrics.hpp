/**
 * @file
 * Run-wide telemetry: a process-wide registry of named counters,
 * gauges, and log2-bucketed histograms, cheap enough for hot paths.
 *
 * Design rules:
 *  - Handles are resolved once (`static obs::Counter &c =
 *    obs::counter("tracestore.cache.hits");`) and then cost a single
 *    relaxed atomic add per event. Metric objects are never destroyed
 *    or moved, so a resolved handle stays valid for the process
 *    lifetime — including across resetForTest(), which zeroes values
 *    but keeps identities.
 *  - Names follow the `subsystem.noun_verb` scheme documented in
 *    DESIGN.md (e.g. `tracestore.cache.hits`, `vm.execute_ns`);
 *    histograms of durations carry a `_ns` suffix, sizes a `_bytes`
 *    suffix.
 *  - Everything is thread-safe: registration takes a mutex once per
 *    call site, updates are lock-free atomics.
 *
 * The JSON run-report exporter over this registry lives in
 * obs/report.hpp.
 */

#ifndef BPNSP_OBS_METRICS_HPP
#define BPNSP_OBS_METRICS_HPP

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace bpnsp::obs {

/** Monotonic event counter (atomic, relaxed ordering). */
class Counter
{
  public:
    void
    add(uint64_t n = 1)
    {
        val.fetch_add(n, std::memory_order_relaxed);
    }

    void inc() { add(1); }

    uint64_t value() const { return val.load(std::memory_order_relaxed); }

  private:
    friend class Registry;

    void reset() { val.store(0, std::memory_order_relaxed); }

    std::atomic<uint64_t> val{0};
};

/** Last-writer-wins instantaneous value (e.g. a fan-out width). */
class Gauge
{
  public:
    void
    set(double x)
    {
        val.store(x, std::memory_order_relaxed);
    }

    double value() const { return val.load(std::memory_order_relaxed); }

  private:
    friend class Registry;

    void reset() { val.store(0.0, std::memory_order_relaxed); }

    std::atomic<double> val{0.0};
};

/** Read-only summary of a histogram at one instant. */
struct HistogramSnapshot
{
    uint64_t count = 0;
    uint64_t sum = 0;
    uint64_t min = 0;       ///< meaningless when count == 0
    uint64_t max = 0;       ///< meaningless when count == 0
    double mean = 0.0;      ///< 0 when empty
    double p50 = 0.0;
    double p90 = 0.0;
    double p99 = 0.0;
    double p999 = 0.0;

    bool empty() const { return count == 0; }
};

/**
 * Fixed-footprint histogram over unsigned values (durations in ns,
 * sizes in bytes, per-shard record counts, ...). Buckets are powers of
 * two: bucket 0 holds the value 0, bucket i (i >= 1) holds values in
 * [2^(i-1), 2^i). observe() is a relaxed atomic add plus CAS-free
 * min/max maintenance, safe from any thread.
 *
 * Percentiles are estimated by linear interpolation inside the bucket
 * the requested rank falls in, then clamped to the observed [min, max]
 * — exact for single-valued histograms, within one bucket otherwise.
 */
class Histogram
{
  public:
    static constexpr size_t kBuckets = 65;   // value 0 + bit widths 1..64

    /** Plain copy of the per-bucket counts (relaxed reads). */
    using BucketCounts = std::array<uint64_t, kBuckets>;

    void
    observe(uint64_t v)
    {
        buckets[bucketIndex(v)].fetch_add(1, std::memory_order_relaxed);
        n.fetch_add(1, std::memory_order_relaxed);
        total.fetch_add(v, std::memory_order_relaxed);
        updateMin(v);
        updateMax(v);
    }

    uint64_t count() const { return n.load(std::memory_order_relaxed); }
    uint64_t sum() const { return total.load(std::memory_order_relaxed); }

    /** Consistent-enough summary for reporting (relaxed reads). */
    HistogramSnapshot snapshot() const;

    /** Approximate p-th percentile (0 <= p <= 100); 0 when empty. */
    double percentile(double p) const;

    /**
     * Copy of the raw bucket counts, the substrate for *interval*
     * quantiles: subtracting two copies taken at different instants
     * gives the bucket counts of just the events in between (counts
     * are monotonic), which percentileFromBuckets() turns into a
     * windowed percentile. Used by the snapshot sampler.
     */
    BucketCounts bucketCounts() const;

    /**
     * Percentile estimate over a standalone bucket-count array (e.g.
     * the delta of two bucketCounts() copies). Same interpolation as
     * percentile(), but clamped only to the bucket bounds — min/max
     * of the window are not known.
     */
    static double percentileFromBuckets(const BucketCounts &counts,
                                        double p);

  private:
    friend class Registry;

    static size_t
    bucketIndex(uint64_t v)
    {
        size_t w = 0;
        while (v != 0) {
            ++w;
            v >>= 1;
        }
        return w;   // 0 for value 0, else bit width in [1, 64]
    }

    void updateMin(uint64_t v);
    void updateMax(uint64_t v);
    void reset();

    std::array<std::atomic<uint64_t>, kBuckets> buckets{};
    std::atomic<uint64_t> n{0};
    std::atomic<uint64_t> total{0};
    std::atomic<uint64_t> lo{UINT64_MAX};
    std::atomic<uint64_t> hi{0};
};

/**
 * The process-wide metric registry. Also owns the run manifest — the
 * free-form key/value fields (workload, input, predictor, binary, ...)
 * the JSON run report embeds under "run". Instrumented layers call
 * setRunField() as they learn run identity; the last writer wins,
 * which matches "the report describes the run's final configuration".
 */
class Registry
{
  public:
    static Registry &instance();

    /** Find-or-create; the returned reference is valid forever. */
    Counter &counter(const std::string &name);
    Gauge &gauge(const std::string &name);
    Histogram &histogram(const std::string &name);

    /** Current value of a counter, 0 when it was never registered. */
    uint64_t counterValue(const std::string &name) const;

    /** Set one run-manifest field (overwrites). */
    void setRunField(const std::string &key, const std::string &value);

    /** Copy of the run manifest. */
    std::map<std::string, std::string> runFields() const;

    /** Wall-clock seconds since the registry was created. */
    double wallSeconds() const;

    /** @name Snapshot access for the exporter (names are sorted). */
    /// @{
    std::vector<std::pair<std::string, uint64_t>> counters() const;
    std::vector<std::pair<std::string, double>> gauges() const;
    std::vector<std::pair<std::string, HistogramSnapshot>>
    histograms() const;

    /**
     * Stable pointers to every registered histogram (metric objects
     * are never destroyed). The snapshot sampler keys its previous
     * bucket copies off these identities.
     */
    std::vector<std::pair<std::string, const Histogram *>>
    histogramRefs() const;
    /// @}

    /**
     * Zero every metric and clear the manifest, keeping every metric
     * object alive so resolved handles stay valid. Tests only.
     */
    void resetForTest();

  private:
    Registry();

    mutable std::mutex mu;
    std::map<std::string, std::unique_ptr<Counter>> counterMap;
    std::map<std::string, std::unique_ptr<Gauge>> gaugeMap;
    std::map<std::string, std::unique_ptr<Histogram>> histogramMap;
    std::map<std::string, std::string> manifest;
    std::chrono::steady_clock::time_point start;
};

/** @name Registry::instance() shorthands for hot-path handle setup. */
/// @{
Counter &counter(const std::string &name);
Gauge &gauge(const std::string &name);
Histogram &histogram(const std::string &name);
/// @}

/**
 * RAII phase timer: records the elapsed wall time in nanoseconds into
 * a histogram on destruction. Resolve the histogram once per call site:
 *
 *   static obs::Histogram &h = obs::histogram("vm.execute_ns");
 *   obs::ScopedTimer timer(h);
 */
class ScopedTimer
{
  public:
    explicit ScopedTimer(Histogram &hist)
        : h(hist), begin(std::chrono::steady_clock::now())
    {
    }

    // Deliberately no ScopedTimer(const std::string&) convenience:
    // it hid a mutex-guarded map lookup inside what looks like a
    // cheap RAII guard, inviting per-call registry lookups on hot
    // paths. Resolve the handle once (static reference) instead.

    ScopedTimer(const ScopedTimer &) = delete;
    ScopedTimer &operator=(const ScopedTimer &) = delete;

    ~ScopedTimer()
    {
        const auto ns =
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                std::chrono::steady_clock::now() - begin)
                .count();
        h.observe(static_cast<uint64_t>(ns < 0 ? 0 : ns));
    }

  private:
    Histogram &h;
    std::chrono::steady_clock::time_point begin;
};

} // namespace bpnsp::obs

#endif // BPNSP_OBS_METRICS_HPP
