#include "obs/trace.hpp"

#include <algorithm>
#include <condition_variable>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <map>
#include <sstream>

#include <unistd.h>

#include "obs/metrics.hpp"
#include "util/logging.hpp"

namespace bpnsp::obs {

namespace {

// Per-thread tracing state. Depth is maintained even while the
// recorder is disabled mid-span so nesting stays consistent across
// enable/disable flips.
thread_local uint64_t tlsTraceId = 0;
thread_local uint32_t tlsDepth = 0;

Counter &
spansRecordedCounter()
{
    static Counter &c = counter("obs.spans_recorded");
    return c;
}

Counter &
spansDroppedCounter()
{
    static Counter &c = counter("obs.spans_dropped");
    return c;
}

void
appendEscaped(std::string &out, const char *s)
{
    for (; *s; ++s) {
        char ch = *s;
        if (ch == '"' || ch == '\\') {
            out.push_back('\\');
            out.push_back(ch);
        } else if (static_cast<unsigned char>(ch) < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof(buf), "\\u%04x",
                          static_cast<unsigned>(
                              static_cast<unsigned char>(ch)));
            out.append(buf);
        } else {
            out.push_back(ch);
        }
    }
}

} // namespace

/**
 * A bounded single-producer/single-consumer ring. The owning thread
 * is the only writer (advances head); consumers serialize on the
 * recorder's registry mutex and advance tail. head/tail are
 * monotonically increasing event counts, so slot index is
 * `count % capacity` and the ring is full when head - tail ==
 * capacity. Full means drop-newest: slots in [tail, head) are never
 * overwritten, which is what makes concurrent peeking safe.
 */
struct TraceRecorder::ThreadRing
{
    explicit ThreadRing(size_t cap, uint32_t tid_)
        : slots(cap), tid(tid_)
    {
    }

    std::vector<SpanEvent> slots;
    uint32_t tid;
    std::atomic<uint64_t> head{0};
    std::atomic<uint64_t> tail{0};
};

TraceRecorder &
TraceRecorder::instance()
{
    // Leaked, like the metric registry: spans may be recorded from
    // destructors of static-duration objects.
    static TraceRecorder *recorder = new TraceRecorder();
    return *recorder;
}

void
TraceRecorder::setEnabled(bool on)
{
    onFlag.store(on, std::memory_order_relaxed);
}

void
TraceRecorder::setRingCapacity(size_t events)
{
    capacity.store(events == 0 ? 1 : events,
                   std::memory_order_relaxed);
}

TraceRecorder::ThreadRing &
TraceRecorder::ringForThisThread()
{
    thread_local std::shared_ptr<ThreadRing> tls;
    if (!tls) {
        std::lock_guard<std::mutex> lock(ringsMu);
        tls = std::make_shared<ThreadRing>(
            capacity.load(std::memory_order_relaxed),
            static_cast<uint32_t>(rings.size()));
        rings.push_back(tls);
    }
    return *tls;
}

void
TraceRecorder::record(const SpanEvent &event)
{
    if (!enabled())
        return;
    ThreadRing &ring = ringForThisThread();
    uint64_t head = ring.head.load(std::memory_order_relaxed);
    uint64_t tail = ring.tail.load(std::memory_order_acquire);
    if (head - tail >= ring.slots.size()) {
        spansDroppedCounter().inc();
        return;
    }
    SpanEvent &slot = ring.slots[head % ring.slots.size()];
    slot = event;
    slot.tid = ring.tid;
    ring.head.store(head + 1, std::memory_order_release);
    spansRecordedCounter().inc();
}

std::vector<SpanEvent>
TraceRecorder::drain()
{
    std::vector<SpanEvent> out;
    std::lock_guard<std::mutex> lock(ringsMu);
    for (auto &ring : rings) {
        uint64_t tail = ring->tail.load(std::memory_order_relaxed);
        uint64_t head = ring->head.load(std::memory_order_acquire);
        for (; tail < head; ++tail)
            out.push_back(ring->slots[tail % ring->slots.size()]);
        ring->tail.store(tail, std::memory_order_release);
    }
    return out;
}

std::vector<SpanEvent>
TraceRecorder::spansFor(uint64_t trace_id) const
{
    std::vector<SpanEvent> out;
    std::lock_guard<std::mutex> lock(ringsMu);
    for (const auto &ring : rings) {
        uint64_t tail = ring->tail.load(std::memory_order_relaxed);
        uint64_t head = ring->head.load(std::memory_order_acquire);
        for (; tail < head; ++tail) {
            const SpanEvent &ev =
                ring->slots[tail % ring->slots.size()];
            if (ev.traceId == trace_id)
                out.push_back(ev);
        }
    }
    std::sort(out.begin(), out.end(),
              [](const SpanEvent &a, const SpanEvent &b) {
                  return a.startNs < b.startNs;
              });
    return out;
}

size_t
TraceRecorder::bufferedEvents() const
{
    size_t n = 0;
    std::lock_guard<std::mutex> lock(ringsMu);
    for (const auto &ring : rings)
        n += ring->head.load(std::memory_order_acquire) -
             ring->tail.load(std::memory_order_relaxed);
    return n;
}

void
TraceRecorder::resetForTest()
{
    std::lock_guard<std::mutex> lock(ringsMu);
    for (auto &ring : rings)
        ring->tail.store(ring->head.load(std::memory_order_acquire),
                         std::memory_order_release);
}

std::string
TraceRecorder::chromeTraceJson(const std::vector<SpanEvent> &events)
{
    // Synchronous spans go on their recording thread's track, where
    // the per-thread span stack guarantees proper nesting. A
    // retroactive span's interval was measured across threads, so on
    // a thread track it could partially overlap the worker's own
    // stack; each gets a per-request `req <id>` track instead —
    // Perfetto then shows one admission-to-reply row per request.
    std::vector<std::pair<const SpanEvent *, uint32_t>> sorted;
    sorted.reserve(events.size());
    uint32_t maxTid = 0;
    for (const SpanEvent &ev : events)
        if (!ev.retro)
            maxTid = std::max(maxTid, ev.tid);
    uint32_t nextTrack = maxTid + 1;
    std::map<uint64_t, uint32_t> requestTracks;   // traceId -> tid
    for (const SpanEvent &ev : events) {
        uint32_t tid = ev.tid;
        if (ev.retro) {
            auto [it, fresh] =
                requestTracks.emplace(ev.traceId, nextTrack);
            if (fresh)
                ++nextTrack;
            tid = it->second;
        }
        sorted.emplace_back(&ev, tid);
    }
    // Sort per track by start time (ties: longer span first so a
    // parent precedes a same-start child) — what both Perfetto and
    // scripts/check_trace.py expect.
    std::sort(sorted.begin(), sorted.end(),
              [](const std::pair<const SpanEvent *, uint32_t> &a,
                 const std::pair<const SpanEvent *, uint32_t> &b) {
                  if (a.second != b.second)
                      return a.second < b.second;
                  if (a.first->startNs != b.first->startNs)
                      return a.first->startNs < b.first->startNs;
                  return a.first->durNs > b.first->durNs;
              });

    const long pid = static_cast<long>(::getpid());
    std::string out;
    out.reserve(128 + sorted.size() * 160);
    out += "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":%ld,"
                  "\"tid\":0,\"args\":{\"name\":\"bpnsp\"}}",
                  pid);
    out += buf;
    if (!sorted.empty()) {
        for (uint32_t tid = 0; tid <= maxTid; ++tid) {
            std::snprintf(
                buf, sizeof(buf),
                ",\n{\"name\":\"thread_name\",\"ph\":\"M\","
                "\"pid\":%ld,\"tid\":%u,"
                "\"args\":{\"name\":\"bpnsp-thread-%u\"}}",
                pid, tid, tid);
            out += buf;
        }
        for (const auto &[traceId, tid] : requestTracks) {
            std::snprintf(
                buf, sizeof(buf),
                ",\n{\"name\":\"thread_name\",\"ph\":\"M\","
                "\"pid\":%ld,\"tid\":%u,"
                "\"args\":{\"name\":\"req %llu\"}}",
                pid, tid,
                static_cast<unsigned long long>(traceId));
            out += buf;
        }
    }
    for (const auto &[ev, tid] : sorted) {
        std::snprintf(buf, sizeof(buf),
                      ",\n{\"name\":\"");
        out += buf;
        appendEscaped(out, ev->name != nullptr ? ev->name : "?");
        std::snprintf(
            buf, sizeof(buf),
            "\",\"ph\":\"X\",\"pid\":%ld,\"tid\":%u,"
            "\"ts\":%.3f,\"dur\":%.3f,"
            "\"args\":{\"trace_id\":\"%llu\",\"depth\":%u}}",
            pid, tid, static_cast<double>(ev->startNs) / 1000.0,
            static_cast<double>(ev->durNs) / 1000.0,
            static_cast<unsigned long long>(ev->traceId), ev->depth);
        out += buf;
    }
    out += "\n]}\n";
    return out;
}

namespace {

Status
writeWholeFile(const std::string &path, const std::string &body)
{
    std::FILE *file = std::fopen(path.c_str(), "wb");
    if (file == nullptr)
        return Status::ioError("trace export: cannot open " + path +
                               ": " + std::strerror(errno));
    size_t written = std::fwrite(body.data(), 1, body.size(), file);
    int closeRc = std::fclose(file);
    if (written != body.size() || closeRc != 0)
        return Status::ioError("trace export: short write to " +
                               path);
    return Status();
}

} // namespace

Status
TraceRecorder::exportChromeTrace(const std::string &path)
{
    return writeWholeFile(path, chromeTraceJson(drain()));
}

void
TraceRecorder::rotateOnce()
{
    std::vector<SpanEvent> events = drain();
    if (events.empty())
        return;
    std::string path;
    {
        std::lock_guard<std::mutex> lock(rotMu);
        path = rotDir + "/trace-" + std::to_string(rotSeq++) +
               ".json";
    }
    Status st = writeWholeFile(path, chromeTraceJson(events));
    if (!st.ok()) {
        warn("obs trace rotation: ", st.str());
        return;
    }
    std::lock_guard<std::mutex> lock(rotMu);
    rotFiles.push_back(path);
    while (rotFiles.size() > rotMaxFiles) {
        std::error_code ec;
        std::filesystem::remove(rotFiles.front(), ec);
        rotFiles.erase(rotFiles.begin());
    }
}

void
TraceRecorder::startRotation(const std::string &dir,
                             size_t max_files, uint64_t period_ms)
{
    {
        std::lock_guard<std::mutex> lock(rotMu);
        if (rotThread.joinable())
            return;
        std::error_code ec;
        std::filesystem::create_directories(dir, ec);
        rotDir = dir;
        rotMaxFiles = max_files == 0 ? 1 : max_files;
        rotPeriodMs = period_ms == 0 ? 1 : period_ms;
        rotStop.store(false, std::memory_order_relaxed);
    }
    rotThread = std::thread([this] {
        while (!rotStop.load(std::memory_order_relaxed)) {
            uint64_t waited = 0;
            while (waited < rotPeriodMs &&
                   !rotStop.load(std::memory_order_relaxed)) {
                uint64_t step = std::min<uint64_t>(
                    50, rotPeriodMs - waited);
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(step));
                waited += step;
            }
            if (rotStop.load(std::memory_order_relaxed))
                break;
            rotateOnce();
        }
    });
}

void
TraceRecorder::stopRotation()
{
    std::thread toJoin;
    {
        std::lock_guard<std::mutex> lock(rotMu);
        if (!rotThread.joinable())
            return;
        rotStop.store(true, std::memory_order_relaxed);
        toJoin = std::move(rotThread);
    }
    toJoin.join();
    rotateOnce();
}

uint64_t
currentTraceId()
{
    return tlsTraceId;
}

ScopedTraceId::ScopedTraceId(uint64_t trace_id) : prev(tlsTraceId)
{
    tlsTraceId = trace_id;
}

ScopedTraceId::~ScopedTraceId()
{
    tlsTraceId = prev;
}

void
Span::begin(const char *name)
{
    spanName = name;
    startNs = spanClockNs();
    depth = tlsDepth++;
    active = true;
}

void
Span::end()
{
    --tlsDepth;
    SpanEvent ev;
    ev.name = spanName;
    ev.traceId = tlsTraceId;
    ev.startNs = startNs;
    ev.durNs = spanClockNs() - startNs;
    ev.depth = depth;
    TraceRecorder::instance().record(ev);
}

void
emitSpan(const char *name, uint64_t trace_id, uint64_t start_ns,
         uint64_t dur_ns)
{
    TraceRecorder &recorder = TraceRecorder::instance();
    if (!recorder.enabled())
        return;
    SpanEvent ev;
    ev.name = name;
    ev.traceId = trace_id;
    ev.startNs = start_ns;
    ev.durNs = dur_ns;
    ev.depth = tlsDepth;
    ev.retro = true;
    recorder.record(ev);
}

} // namespace bpnsp::obs
