/**
 * @file
 * Periodic time-series snapshots of the metric registry.
 *
 * The run report (obs/report.hpp) is an exit-time aggregate: one
 * p99 for the whole run. That hides exactly the things a serving
 * daemon cares about — a latency spike during a drain, queue depth
 * ramping toward backpressure, cache hit rate decaying as the
 * working set rotates. The SnapshotSampler closes that gap: a
 * background thread samples the registry every `--snapshot-ms`
 * milliseconds and stores *interval* views — counter deltas and
 * windowed histogram quantiles computed from log2-bucket deltas
 * (Histogram::percentileFromBuckets), not cumulative ones — into a
 * fixed-capacity ring. When the ring fills, the oldest samples are
 * overwritten: a long-lived daemon keeps the most recent window at
 * bounded memory.
 *
 * The ring is exported as the `"snapshots"` section of the run
 * report (schema_rev >= 6), which is how BENCH_serve_latency.json
 * carries p99-over-time curves instead of one aggregate number.
 *
 * Sampling cost is proportional to registry size (a mutex-guarded
 * map walk), entirely off every hot path; with the sampler stopped
 * (the default) nothing is paid at all.
 */

#ifndef BPNSP_OBS_SNAPSHOT_HPP
#define BPNSP_OBS_SNAPSHOT_HPP

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "obs/metrics.hpp"

namespace bpnsp::obs {

/** One interval sample: what happened since the previous sample. */
struct Snapshot
{
    /** Windowed histogram view (quantiles of this interval only). */
    struct HistWindow
    {
        std::string name;
        uint64_t count = 0;   ///< events in this interval
        double p50 = 0.0;
        double p90 = 0.0;
        double p99 = 0.0;
        double p999 = 0.0;
    };

    double tSeconds = 0.0;   ///< registry wall clock at sample time

    /** Counter increments over the interval; zero deltas omitted. */
    std::vector<std::pair<std::string, uint64_t>> counterDeltas;

    /** Gauges are instantaneous — current value at sample time. */
    std::vector<std::pair<std::string, double>> gauges;

    /** Histograms that saw events this interval. */
    std::vector<HistWindow> histograms;
};

class SnapshotSampler
{
  public:
    static SnapshotSampler &instance();

    /**
     * Start the background sampler (idempotent). `capacity` bounds
     * the ring; once exceeded the oldest samples are overwritten.
     */
    void start(uint64_t period_ms, size_t capacity = kDefaultCapacity);

    /** Stop the background thread, taking one final sample. */
    void stop();

    /**
     * Take one sample now (also the test entry point — tests drive
     * the ring deterministically without the thread).
     */
    void sampleOnce();

    /** Ring contents, oldest first. */
    std::vector<Snapshot> samples() const;

    /** Total samples ever taken (> samples().size() once wrapped). */
    uint64_t totalSamples() const;

    uint64_t periodMs() const;
    bool running() const;

    /** Tests only: clear the ring, baselines, and configuration. */
    void resetForTest();

    /**
     * Tests only: set the ring capacity without starting the thread,
     * so wraparound is driven deterministically via sampleOnce().
     */
    void setCapacityForTest(size_t capacity);

    static constexpr size_t kDefaultCapacity = 512;

  private:
    SnapshotSampler() = default;

    void sampleLocked();

    mutable std::mutex mu;
    std::vector<Snapshot> ring;
    size_t cap = kDefaultCapacity;
    uint64_t taken = 0;       ///< total samples; ring slot = taken % cap
    uint64_t period = 0;

    // Interval baselines from the previous sample.
    std::map<std::string, uint64_t> prevCounters;
    std::map<const Histogram *, Histogram::BucketCounts> prevBuckets;

    std::thread worker;
    std::atomic<bool> stopFlag{false};
    bool threadRunning = false;
};

} // namespace bpnsp::obs

#endif // BPNSP_OBS_SNAPSHOT_HPP
