#include "obs/snapshot.hpp"

#include <chrono>

namespace bpnsp::obs {

SnapshotSampler &
SnapshotSampler::instance()
{
    // Leaked like the registry: the exit-time report renderer may
    // read samples after static destruction has begun elsewhere.
    static SnapshotSampler *sampler = new SnapshotSampler();
    return *sampler;
}

void
SnapshotSampler::sampleLocked()
{
    Registry &reg = Registry::instance();

    Snapshot s;
    s.tSeconds = reg.wallSeconds();

    for (const auto &[name, value] : reg.counters()) {
        auto it = prevCounters.find(name);
        const uint64_t prev = it == prevCounters.end() ? 0 : it->second;
        // Counters are monotonic; a smaller current value means a
        // test reset the registry, so restart the baseline.
        const uint64_t delta = value >= prev ? value - prev : value;
        prevCounters[name] = value;
        if (delta != 0)
            s.counterDeltas.emplace_back(name, delta);
    }

    s.gauges = reg.gauges();

    for (const auto &[name, hist] : reg.histogramRefs()) {
        Histogram::BucketCounts cur = hist->bucketCounts();
        auto it = prevBuckets.find(hist);
        Histogram::BucketCounts delta{};
        uint64_t events = 0;
        for (size_t i = 0; i < Histogram::kBuckets; ++i) {
            const uint64_t prev =
                it == prevBuckets.end() ? 0 : it->second[i];
            delta[i] = cur[i] >= prev ? cur[i] - prev : cur[i];
            events += delta[i];
        }
        prevBuckets[hist] = cur;
        if (events == 0)
            continue;
        Snapshot::HistWindow w;
        w.name = name;
        w.count = events;
        w.p50 = Histogram::percentileFromBuckets(delta, 50.0);
        w.p90 = Histogram::percentileFromBuckets(delta, 90.0);
        w.p99 = Histogram::percentileFromBuckets(delta, 99.0);
        w.p999 = Histogram::percentileFromBuckets(delta, 99.9);
        s.histograms.push_back(std::move(w));
    }

    if (ring.size() < cap)
        ring.push_back(std::move(s));
    else
        ring[taken % cap] = std::move(s);
    ++taken;
}

void
SnapshotSampler::sampleOnce()
{
    std::lock_guard<std::mutex> lock(mu);
    sampleLocked();
}

void
SnapshotSampler::start(uint64_t period_ms, size_t capacity)
{
    std::lock_guard<std::mutex> lock(mu);
    if (threadRunning)
        return;
    period = period_ms == 0 ? 1 : period_ms;
    cap = capacity == 0 ? 1 : capacity;
    ring.clear();
    ring.reserve(cap);
    taken = 0;
    stopFlag.store(false, std::memory_order_relaxed);
    threadRunning = true;
    worker = std::thread([this] {
        while (!stopFlag.load(std::memory_order_relaxed)) {
            uint64_t waited = 0;
            const uint64_t target = period;
            while (waited < target &&
                   !stopFlag.load(std::memory_order_relaxed)) {
                const uint64_t step =
                    target - waited < 50 ? target - waited : 50;
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(step));
                waited += step;
            }
            if (stopFlag.load(std::memory_order_relaxed))
                break;
            sampleOnce();
        }
    });
}

void
SnapshotSampler::stop()
{
    std::thread toJoin;
    {
        std::lock_guard<std::mutex> lock(mu);
        if (!threadRunning)
            return;
        stopFlag.store(true, std::memory_order_relaxed);
        toJoin = std::move(worker);
        threadRunning = false;
    }
    toJoin.join();
    sampleOnce();
}

std::vector<Snapshot>
SnapshotSampler::samples() const
{
    std::lock_guard<std::mutex> lock(mu);
    std::vector<Snapshot> out;
    if (taken <= ring.size()) {
        out = ring;
    } else {
        out.reserve(ring.size());
        for (size_t i = 0; i < ring.size(); ++i)
            out.push_back(ring[(taken + i) % ring.size()]);
    }
    return out;
}

uint64_t
SnapshotSampler::totalSamples() const
{
    std::lock_guard<std::mutex> lock(mu);
    return taken;
}

uint64_t
SnapshotSampler::periodMs() const
{
    std::lock_guard<std::mutex> lock(mu);
    return period;
}

bool
SnapshotSampler::running() const
{
    std::lock_guard<std::mutex> lock(mu);
    return threadRunning;
}

void
SnapshotSampler::setCapacityForTest(size_t capacity)
{
    std::lock_guard<std::mutex> lock(mu);
    ring.clear();
    taken = 0;
    cap = capacity == 0 ? 1 : capacity;
}

void
SnapshotSampler::resetForTest()
{
    stop();
    std::lock_guard<std::mutex> lock(mu);
    ring.clear();
    cap = kDefaultCapacity;
    taken = 0;
    period = 0;
    prevCounters.clear();
    prevBuckets.clear();
}

} // namespace bpnsp::obs
