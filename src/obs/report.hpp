/**
 * @file
 * JSON run reports over the obs metric registry.
 *
 * A run report is one JSON document per process run: a `run` manifest
 * (binary, workload, input, predictor, instruction budget, git
 * describe, wall seconds) plus every counter, gauge, and histogram
 * registered at export time. The schema is documented in DESIGN.md
 * ("Telemetry"); reports are stable input for CI artifacts and the
 * BENCH_*.json perf-trajectory files.
 *
 * Every binary that parses options through OptionParser accepts:
 *   --metrics-out=FILE   write the run report on exit
 *   --progress           instr/sec heartbeat to stderr (inform level)
 *   --trace-out=FILE     record spans; write a Chrome/Perfetto trace
 *                        (obs/trace.hpp) on exit
 *   --snapshot-ms=N      sample the registry every N ms into the
 *                        report's "snapshots" ring (obs/snapshot.hpp)
 * after calling obs::configureFromOptions(opts) once after parse().
 */

#ifndef BPNSP_OBS_REPORT_HPP
#define BPNSP_OBS_REPORT_HPP

#include <cstdint>
#include <string>

namespace bpnsp {

class OnlineStats;
class OptionParser;

namespace obs {

struct Snapshot;

/**
 * Render the full run report as a JSON document. Always contains the
 * keys `run.instructions`, `run.wall_seconds`, `run.git`,
 * `counters["tracestore.cache.{hits,misses}"]`, and
 * `counters["bp.{predictions,mispredicts}"]` (0 when untouched), so
 * downstream tooling can rely on them.
 */
std::string renderRunReport();

/**
 * Render the live-introspection snapshot served over the wire by the
 * Stats request (`bpnsp-stats-v1`): the full metric registry —
 * counters, gauges, histograms with the exact p50/p90/p99/p999
 * quantile contract — plus uptime and git identity. Same section
 * format as the run report, minus the run manifest and time series:
 * cheap enough to build on a server's io thread.
 */
std::string renderStatsSnapshotJson();

/** One snapshot-sampler interval sample as a JSON object. */
std::string snapshotJson(const Snapshot &s);

/** Write renderRunReport() to `path`; warn() and false on failure. */
bool writeRunReport(const std::string &path);

/**
 * Arrange for the run report to be written to `path` at process exit
 * (std::atexit). An empty path cancels a pending exit report.
 */
void setReportPath(const std::string &path);

/**
 * Enable span recording and arrange for a Chrome/Perfetto trace to
 * be written to `path` at process exit. An empty path disables
 * recording and cancels a pending exit trace.
 */
void setTracePath(const std::string &path);

/**
 * Install SIGINT/SIGTERM handlers (idempotent). The first signal
 * fires the global cancel token (util/cancel.hpp) so cooperative
 * loops drain; unless graceful-drain mode is on, it then writes the
 * pending run report and re-raises, so a Ctrl-C'd run still leaves a
 * valid --metrics-out file instead of losing everything std::atexit
 * would have written. A second signal always force-exits immediately
 * (128+sig), report or no report.
 *
 * Installed automatically by configureFromOptions() when
 * --metrics-out is set; binaries that supervise their own drain (the
 * campaign driver) install explicitly and enable graceful mode.
 */
void installSignalHandlers();

/**
 * Graceful-drain mode: when on, the first signal only fires the
 * cancel token — the caller owns flushing journals/reports and
 * exiting. Off (the default), the first signal writes the report and
 * re-raises.
 */
void setSignalDrainMode(bool graceful);

/** The pending exit-report path ("" when none). */
std::string reportPath();

/**
 * Enable the progress heartbeat: trace drivers emit an instr/sec line
 * through inform() every `instructions` delivered (0 disables). The
 * heartbeat respects BPNSP_LOG_LEVEL, so CI can silence it.
 */
void setProgressInterval(uint64_t instructions);

/** Current heartbeat period in instructions (0 = disabled). */
uint64_t progressInterval();

/** Default heartbeat period used for a bare --progress flag. */
inline constexpr uint64_t kDefaultProgressInterval = 10'000'000;

/**
 * Wire the standard telemetry options (registered by every
 * OptionParser): --metrics-out installs the exit report, --progress
 * enables the heartbeat. Also records the binary name and argv-level
 * fields in the run manifest. Call once, after opts.parse().
 */
void configureFromOptions(const OptionParser &opts);

/**
 * Serialize an OnlineStats accumulator as a JSON object. Empty
 * accumulators emit null for min/max/mean/stddev — an empty stat is
 * not the same thing as one that observed 0 (see
 * OnlineStats::empty()).
 */
std::string statsJson(const OnlineStats &stats);

/** git describe of the built tree ("unknown" outside a git checkout). */
std::string gitDescribe();

} // namespace obs
} // namespace bpnsp

#endif // BPNSP_OBS_REPORT_HPP
