/**
 * @file
 * Request-scoped tracing: lightweight spans recorded into lock-free
 * per-thread ring buffers, exported as Chrome trace-event / Perfetto
 * JSON.
 *
 * Design rules (the hot-path discipline of obs/metrics.hpp, applied
 * to causality):
 *  - A disabled recorder costs exactly one relaxed atomic load per
 *    Span construction — nothing else. All binaries link this; only
 *    runs that pass --trace-out / --trace-dir pay for it.
 *  - An enabled Span costs two steady_clock reads plus one SPSC ring
 *    append (~hundreds of ns), never a lock and never an allocation:
 *    span names must be static-lifetime strings (string literals),
 *    the ring slots are preallocated, and each ring is written only
 *    by its owning thread.
 *  - Events are recorded at span *end* as complete intervals
 *    (start + duration), so a recorded stream is balanced by
 *    construction; nesting depth is tracked per thread so exporters
 *    and validators can check the tree shape without a begin/end
 *    pairing pass.
 *  - When a ring fills, new spans are dropped (never the old ones
 *    overwritten): `obs.spans_dropped` counts the loss, and a
 *    concurrent reader can always safely copy the published range.
 *
 * Spans carry a per-thread *trace id* — a request id, campaign cell
 * id, or any other causality key — installed with ScopedTraceId.
 * Everything recorded under that scope (replay, chunk decode, ...)
 * inherits the id, which is what lets a slow-request log pull the
 * whole span tree for one request out of the shared rings.
 *
 * Export is Chrome trace-event JSON ("X" complete events,
 * microsecond timestamps) — the format ui.perfetto.dev and
 * chrome://tracing open directly. scripts/check_trace.py validates
 * the schema and nesting invariants in CI.
 */

#ifndef BPNSP_OBS_TRACE_HPP
#define BPNSP_OBS_TRACE_HPP

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "util/status.hpp"

namespace bpnsp::obs {

/** One completed span, as stored in a ring slot. */
struct SpanEvent
{
    const char *name = nullptr;   ///< static-lifetime string
    uint64_t traceId = 0;         ///< causality key (0 = unscoped)
    uint64_t startNs = 0;         ///< steady-clock, process-relative
    uint64_t durNs = 0;
    uint32_t tid = 0;             ///< stable per-thread track index
    uint32_t depth = 0;           ///< nesting depth at record time

    /**
     * Cross-thread retroactive span (emitSpan): its interval was
     * measured across threads, so it may legitimately overlap the
     * recording thread's own synchronous span stack. The exporter
     * places these on per-request tracks instead of thread tracks so
     * every exported track still nests properly.
     */
    bool retro = false;
};

/**
 * The process-wide span recorder: a registry of per-thread SPSC
 * rings plus the export/rotation machinery. Like the metric
 * registry, the instance is created on first use and deliberately
 * leaked so Span destructors in static-duration objects stay safe.
 */
class TraceRecorder
{
  public:
    static TraceRecorder &instance();

    /** Turn recording on/off (a relaxed store; safe any time). */
    void setEnabled(bool on);

    bool
    enabled() const
    {
        return onFlag.load(std::memory_order_relaxed);
    }

    /**
     * Ring capacity (events per thread) used for rings created
     * *after* the call. Rings already registered keep their size.
     */
    void setRingCapacity(size_t events);

    /**
     * Move every published event out of every ring (oldest first per
     * thread). Safe concurrently with recording threads: only the
     * published range is consumed.
     */
    std::vector<SpanEvent> drain();

    /**
     * Copy (without consuming) every published event whose trace id
     * matches. The slow path behind slow-request span dumps — cost
     * is proportional to the buffered event count, paid only when a
     * request already blew its latency budget.
     */
    std::vector<SpanEvent> spansFor(uint64_t trace_id) const;

    /** Buffered (published, unconsumed) events across all rings. */
    size_t bufferedEvents() const;

    /**
     * Render events as a Chrome trace-event JSON document
     * (traceEvents array of "X" complete events, ts/dur in
     * microseconds): one tid track per recording thread for
     * synchronous spans, plus one `req <trace id>` track per request
     * for retroactive cross-thread spans (queue wait, request root),
     * which would otherwise partially overlap the worker's own stack.
     */
    static std::string chromeTraceJson(
        const std::vector<SpanEvent> &events);

    /** drain() + write chromeTraceJson to `path`. */
    Status exportChromeTrace(const std::string &path);

    /**
     * Start the rotating background exporter: every `period_ms` the
     * rings are drained and, when non-empty, written to
     * `dir/trace-<seq>.json`; only the newest `max_files` files are
     * kept, so a long-lived daemon's trace disk footprint stays
     * bounded. Idempotent (a second call is ignored).
     */
    void startRotation(const std::string &dir, size_t max_files,
                       uint64_t period_ms);

    /** Stop the exporter, flushing one final rotation file. */
    void stopRotation();

    /** Tests only: drop all buffered events and reset drop counts. */
    void resetForTest();

    // Internal: called by Span/emitSpan on the recording thread.
    void record(const SpanEvent &event);

  private:
    struct ThreadRing;

    TraceRecorder() = default;

    ThreadRing &ringForThisThread();
    void rotateOnce();

    std::atomic<bool> onFlag{false};
    std::atomic<size_t> capacity{8192};

    mutable std::mutex ringsMu;   ///< protects the registry only
    std::vector<std::shared_ptr<ThreadRing>> rings;

    std::mutex rotMu;
    std::thread rotThread;
    std::atomic<bool> rotStop{false};
    std::string rotDir;
    size_t rotMaxFiles = 8;
    uint64_t rotPeriodMs = 2000;
    uint64_t rotSeq = 0;
    std::vector<std::string> rotFiles;
};

/** Monotonic (steady-clock) nanoseconds, the span time base. */
inline uint64_t
spanClockNs()
{
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

/** The calling thread's current trace id (0 = unscoped). */
uint64_t currentTraceId();

/**
 * RAII trace-id scope: spans recorded on this thread while the scope
 * is alive carry `trace_id`. Nests (the previous id is restored).
 */
class ScopedTraceId
{
  public:
    explicit ScopedTraceId(uint64_t trace_id);
    ~ScopedTraceId();

    ScopedTraceId(const ScopedTraceId &) = delete;
    ScopedTraceId &operator=(const ScopedTraceId &) = delete;

  private:
    uint64_t prev;
};

/**
 * RAII span. `name` must be a static-lifetime string (a literal):
 * the recorder stores the pointer, not a copy.
 *
 *   obs::Span span("tracestore.replay");
 */
class Span
{
  public:
    explicit Span(const char *name)
    {
        if (TraceRecorder::instance().enabled())
            begin(name);
    }

    Span(const Span &) = delete;
    Span &operator=(const Span &) = delete;

    ~Span()
    {
        if (active)
            end();
    }

  private:
    void begin(const char *name);
    void end();

    const char *spanName = nullptr;
    uint64_t startNs = 0;
    uint32_t depth = 0;
    bool active = false;
};

/**
 * Record an already-measured interval as a span on the calling
 * thread's ring — for durations whose endpoints lived on different
 * threads (admission-queue wait: enqueued on the io thread, popped
 * on a worker). Depth is taken from the calling thread's current
 * nesting level.
 */
void emitSpan(const char *name, uint64_t trace_id, uint64_t start_ns,
              uint64_t dur_ns);

} // namespace bpnsp::obs

#endif // BPNSP_OBS_TRACE_HPP
