#include "obs/metrics.hpp"

#include <algorithm>

namespace bpnsp::obs {

// --- Histogram -------------------------------------------------------

void
Histogram::updateMin(uint64_t v)
{
    uint64_t cur = lo.load(std::memory_order_relaxed);
    while (v < cur &&
           !lo.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
}

void
Histogram::updateMax(uint64_t v)
{
    uint64_t cur = hi.load(std::memory_order_relaxed);
    while (v > cur &&
           !hi.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
}

void
Histogram::reset()
{
    for (auto &b : buckets)
        b.store(0, std::memory_order_relaxed);
    n.store(0, std::memory_order_relaxed);
    total.store(0, std::memory_order_relaxed);
    lo.store(UINT64_MAX, std::memory_order_relaxed);
    hi.store(0, std::memory_order_relaxed);
}

Histogram::BucketCounts
Histogram::bucketCounts() const
{
    BucketCounts out;
    for (size_t i = 0; i < kBuckets; ++i)
        out[i] = buckets[i].load(std::memory_order_relaxed);
    return out;
}

double
Histogram::percentileFromBuckets(const BucketCounts &counts, double p)
{
    uint64_t cnt = 0;
    for (uint64_t c : counts)
        cnt += c;
    if (cnt == 0)
        return 0.0;
    p = std::clamp(p, 0.0, 100.0);

    // Rank in [0, cnt); walk buckets until the cumulative count
    // covers it, then interpolate linearly inside that bucket.
    const double rank = p / 100.0 * static_cast<double>(cnt);
    uint64_t seen = 0;
    double last = 0.0;
    for (size_t i = 0; i < kBuckets; ++i) {
        const uint64_t in_bucket = counts[i];
        if (in_bucket == 0)
            continue;
        const double bucket_lo =
            i == 0 ? 0.0 : static_cast<double>(1ull << (i - 1));
        const double bucket_hi =
            i == 0 ? 0.0
                   : (i >= 64 ? 2.0 * static_cast<double>(1ull << 63)
                              : static_cast<double>(1ull << i));
        if (static_cast<double>(seen + in_bucket) >= rank) {
            const double frac =
                (rank - static_cast<double>(seen)) /
                static_cast<double>(in_bucket);
            return bucket_lo + frac * (bucket_hi - bucket_lo);
        }
        seen += in_bucket;
        last = bucket_hi;
    }
    return last;
}

double
Histogram::percentile(double p) const
{
    const uint64_t cnt = count();
    if (cnt == 0)
        return 0.0;
    const uint64_t vmin = lo.load(std::memory_order_relaxed);
    const uint64_t vmax = hi.load(std::memory_order_relaxed);
    double v = percentileFromBuckets(bucketCounts(), p);
    // The observed extremes always bound the estimate, which makes
    // single-valued histograms exact.
    v = std::max(v, static_cast<double>(vmin));
    v = std::min(v, static_cast<double>(vmax));
    return v;
}

HistogramSnapshot
Histogram::snapshot() const
{
    HistogramSnapshot s;
    s.count = count();
    s.sum = sum();
    if (s.count == 0)
        return s;
    s.min = lo.load(std::memory_order_relaxed);
    s.max = hi.load(std::memory_order_relaxed);
    s.mean = static_cast<double>(s.sum) / static_cast<double>(s.count);
    s.p50 = percentile(50.0);
    s.p90 = percentile(90.0);
    s.p99 = percentile(99.0);
    s.p999 = percentile(99.9);
    return s;
}

// --- Registry --------------------------------------------------------

Registry::Registry()
    : start(std::chrono::steady_clock::now())
{
}

Registry &
Registry::instance()
{
    // Leaked on purpose: metric handles resolved anywhere in the
    // process (including other static-duration objects) must outlive
    // every user, and atexit-ordered destruction cannot guarantee that.
    static Registry *the = new Registry();
    return *the;
}

Counter &
Registry::counter(const std::string &name)
{
    std::lock_guard<std::mutex> lock(mu);
    auto &slot = counterMap[name];
    if (slot == nullptr)
        slot = std::make_unique<Counter>();
    return *slot;
}

Gauge &
Registry::gauge(const std::string &name)
{
    std::lock_guard<std::mutex> lock(mu);
    auto &slot = gaugeMap[name];
    if (slot == nullptr)
        slot = std::make_unique<Gauge>();
    return *slot;
}

Histogram &
Registry::histogram(const std::string &name)
{
    std::lock_guard<std::mutex> lock(mu);
    auto &slot = histogramMap[name];
    if (slot == nullptr)
        slot = std::make_unique<Histogram>();
    return *slot;
}

uint64_t
Registry::counterValue(const std::string &name) const
{
    std::lock_guard<std::mutex> lock(mu);
    const auto it = counterMap.find(name);
    return it == counterMap.end() ? 0 : it->second->value();
}

void
Registry::setRunField(const std::string &key, const std::string &value)
{
    std::lock_guard<std::mutex> lock(mu);
    manifest[key] = value;
}

std::map<std::string, std::string>
Registry::runFields() const
{
    std::lock_guard<std::mutex> lock(mu);
    return manifest;
}

double
Registry::wallSeconds() const
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - start)
        .count();
}

std::vector<std::pair<std::string, uint64_t>>
Registry::counters() const
{
    std::lock_guard<std::mutex> lock(mu);
    std::vector<std::pair<std::string, uint64_t>> out;
    out.reserve(counterMap.size());
    for (const auto &[name, c] : counterMap)
        out.emplace_back(name, c->value());
    return out;
}

std::vector<std::pair<std::string, double>>
Registry::gauges() const
{
    std::lock_guard<std::mutex> lock(mu);
    std::vector<std::pair<std::string, double>> out;
    out.reserve(gaugeMap.size());
    for (const auto &[name, g] : gaugeMap)
        out.emplace_back(name, g->value());
    return out;
}

std::vector<std::pair<std::string, HistogramSnapshot>>
Registry::histograms() const
{
    std::lock_guard<std::mutex> lock(mu);
    std::vector<std::pair<std::string, HistogramSnapshot>> out;
    out.reserve(histogramMap.size());
    for (const auto &[name, h] : histogramMap)
        out.emplace_back(name, h->snapshot());
    return out;
}

std::vector<std::pair<std::string, const Histogram *>>
Registry::histogramRefs() const
{
    std::lock_guard<std::mutex> lock(mu);
    std::vector<std::pair<std::string, const Histogram *>> out;
    out.reserve(histogramMap.size());
    for (const auto &[name, h] : histogramMap)
        out.emplace_back(name, h.get());
    return out;
}

void
Registry::resetForTest()
{
    std::lock_guard<std::mutex> lock(mu);
    for (auto &[name, c] : counterMap)
        c->reset();
    for (auto &[name, g] : gaugeMap)
        g->reset();
    for (auto &[name, h] : histogramMap)
        h->reset();
    manifest.clear();
}

Counter &
counter(const std::string &name)
{
    return Registry::instance().counter(name);
}

Gauge &
gauge(const std::string &name)
{
    return Registry::instance().gauge(name);
}

Histogram &
histogram(const std::string &name)
{
    return Registry::instance().histogram(name);
}

} // namespace bpnsp::obs
