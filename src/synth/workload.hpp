/**
 * @file
 * Synthesized programs as first-class workloads.
 *
 * Name grammar (accepted everywhere a workload name is —
 * campaigns, the serving daemon, benches, bpnsp_synth itself):
 *
 *   synth:<profile-ref>:<seed>          one generated workload
 *   synth:<profile-ref>:<base>+<count>  a population: seeds
 *                                       base, base+1, ..., base+count-1
 *
 * <profile-ref> is a profile JSON path when it contains '/' or ends
 * in ".json"; otherwise it names a profile in the directory given by
 * BPNSP_SYNTH_PROFILES (resolved as <dir>/<ref>.json). The seed is
 * decimal. Since a generated program is a pure function of
 * (profile document, seed), a synth name identifies one exact trace,
 * which is what makes it safe as a trace-cache key and as a
 * campaign-cell coordinate.
 */

#ifndef BPNSP_SYNTH_WORKLOAD_HPP
#define BPNSP_SYNTH_WORKLOAD_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "synth/profile.hpp"
#include "util/status.hpp"
#include "workloads/workload.hpp"

namespace bpnsp::synth {

/** True when `name` uses the synth: prefix (not necessarily valid). */
bool isSynthName(const std::string &name);

/** Parsed form of a single (non-population) synth workload name. */
struct SynthName
{
    std::string profileRef;
    uint64_t seed = 0;
};

/**
 * Parse `synth:<profile-ref>:<seed>`; InvalidArgument (never fatal)
 * on grammar violations — the serving daemon feeds client-controlled
 * names through this.
 */
Status parseSynthName(const std::string &name, SynthName *out);

/**
 * Resolve a profile reference to a loaded profile. `path_out`
 * (optional) receives the file path consulted.
 */
Status resolveProfileRef(const std::string &ref, SynthProfile *out,
                         std::string *path_out = nullptr);

/**
 * Build the Workload for one synth name: a single input whose seed is
 * the name's seed and whose builder regenerates the program from the
 * (loaded) profile. Never fatal; the error names the defect.
 */
Status makeSynthWorkload(const std::string &name, Workload *out);

/**
 * Expand a workload-name spec that may be a synth population
 * (`synth:ref:base+count`) into concrete workload names. Non-synth
 * and single-seed synth names pass through as one element.
 * InvalidArgument on a malformed population suffix.
 */
Status expandPopulation(const std::string &spec,
                        std::vector<std::string> *names);

} // namespace bpnsp::synth

#endif // BPNSP_SYNTH_WORKLOAD_HPP
