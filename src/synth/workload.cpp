#include "synth/workload.hpp"

#include <cerrno>
#include <cstdlib>

#include "synth/generator.hpp"

namespace bpnsp::synth {

namespace {

constexpr const char *kPrefix = "synth:";

/** Strict decimal uint64 parse; false on junk, empty, or overflow. */
bool
parseUint(const std::string &text, uint64_t *value)
{
    if (text.empty())
        return false;
    char *end = nullptr;
    errno = 0;
    const unsigned long long v = std::strtoull(text.c_str(), &end, 10);
    if (errno != 0 || end != text.c_str() + text.size())
        return false;
    *value = v;
    return true;
}

/** True when the reference is a literal file path. */
bool
refIsPath(const std::string &ref)
{
    if (ref.find('/') != std::string::npos)
        return true;
    return ref.size() > 5 &&
           ref.compare(ref.size() - 5, 5, ".json") == 0;
}

} // namespace

bool
isSynthName(const std::string &name)
{
    return name.rfind(kPrefix, 0) == 0;
}

Status
parseSynthName(const std::string &name, SynthName *out)
{
    if (!isSynthName(name))
        return Status::invalidArgument("not a synth workload name: " +
                                       name);
    const std::string body = name.substr(std::string(kPrefix).size());
    // The profile reference may itself contain ':' (rare, but paths
    // can); the seed is always the suffix after the LAST colon.
    const size_t colon = body.rfind(':');
    if (colon == std::string::npos || colon == 0 ||
        colon + 1 == body.size())
        return Status::invalidArgument(
            "synth name needs 'synth:<profile>:<seed>': " + name);
    out->profileRef = body.substr(0, colon);
    if (!parseUint(body.substr(colon + 1), &out->seed))
        return Status::invalidArgument("bad seed in synth name: " +
                                       name);
    return Status();
}

Status
resolveProfileRef(const std::string &ref, SynthProfile *out,
                  std::string *path_out)
{
    if (ref.empty())
        return Status::invalidArgument("empty synth profile reference");
    std::string path;
    if (refIsPath(ref)) {
        path = ref;
    } else {
        const char *dir = std::getenv("BPNSP_SYNTH_PROFILES");
        if (dir == nullptr || dir[0] == '\0')
            return Status::invalidArgument(
                "profile reference '" + ref +
                "' is not a path and BPNSP_SYNTH_PROFILES is not set");
        path = std::string(dir) + "/" + ref + ".json";
    }
    if (path_out != nullptr)
        *path_out = path;
    return SynthProfile::load(path, out);
}

Status
makeSynthWorkload(const std::string &name, Workload *out)
{
    SynthName parsed;
    if (Status st = parseSynthName(name, &parsed); !st.ok())
        return st;
    SynthProfile profile;
    if (Status st = resolveProfileRef(parsed.profileRef, &profile);
        !st.ok())
        return st;
    *out = Workload();
    out->name = name;
    out->lcf = profile.staticCallTargets >= 64;
    out->inputs = {
        {"seed-" + std::to_string(parsed.seed), parsed.seed}};
    // The builder captures the profile by value: the workload stays
    // valid after the profile file changes on disk (a given Workload
    // object always regenerates the program it was resolved to).
    out->builder = [profile, name](uint64_t seed) {
        return generateProgram(profile, seed, name);
    };
    return Status();
}

Status
expandPopulation(const std::string &spec,
                 std::vector<std::string> *names)
{
    if (!isSynthName(spec)) {
        names->push_back(spec);
        return Status();
    }
    const size_t plus = spec.rfind('+');
    const size_t colon = spec.rfind(':');
    if (plus == std::string::npos || colon == std::string::npos ||
        plus < colon) {
        names->push_back(spec);
        return Status();
    }
    const std::string head = spec.substr(0, plus);   // synth:ref:base
    uint64_t count = 0;
    if (!parseUint(spec.substr(plus + 1), &count) || count == 0)
        return Status::invalidArgument(
            "bad population count in '" + spec +
            "' (want synth:<profile>:<base>+<count>)");
    SynthName base;
    if (Status st = parseSynthName(head, &base); !st.ok())
        return st;
    for (uint64_t i = 0; i < count; ++i)
        names->push_back(std::string(kPrefix) + base.profileRef + ":" +
                         std::to_string(base.seed + i));
    return Status();
}

} // namespace bpnsp::synth
