/**
 * @file
 * Profile fitting: stream any retired-instruction trace (VM-captured
 * or trace-store replay — both arrive through the same TraceSink
 * interface) and distill it into a SynthProfile.
 *
 * The fitter keeps O(static branches) state, not O(trace): per static
 * conditional branch it tracks executions, taken outcomes, and a
 * 16x2 outcome table conditioned on the branch's own last four
 * outcomes, from which it computes the conditional history entropy
 * H(outcome | last-4) in [0,1] — the axis that separates
 * data-dependent H2Ps (entropy near 1) from patterned or biased
 * branches (entropy near 0). Recurrence intervals ride on the
 * existing analysis/recurrence reservoir collector, and the Fig. 3
 * execution-count histogram comes from analysis/distributions, so
 * the profile is consistent with the characterization figures the
 * repo already produces.
 */

#ifndef BPNSP_SYNTH_FITTER_HPP
#define BPNSP_SYNTH_FITTER_HPP

#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "analysis/recurrence.hpp"
#include "synth/profile.hpp"
#include "trace/sink.hpp"
#include "workloads/workload.hpp"

namespace bpnsp::synth {

/** Streams a trace and fits a SynthProfile over it. */
class ProfileFitter : public TraceSink
{
  public:
    ProfileFitter();

    void onRecord(const TraceRecord &rec) override;
    void onEnd() override;

    /**
     * The fitted profile; call after the stream ended. `name` becomes
     * the profile identifier (used in generated program names).
     */
    SynthProfile profile(const std::string &name) const;

    /** Instructions observed so far. */
    uint64_t instructions() const { return instrCount; }

    /** Distinct static conditional branches observed so far. */
    size_t staticBranches() const { return perBranch.size(); }

    /** Per-branch measurement (diagnostics / validation dumps). */
    struct BranchSummary
    {
        uint64_t ip = 0;
        uint64_t execs = 0;
        uint64_t taken = 0;
        double entropy = 0.0;
    };

    /** All observed static branches, sorted by ip. */
    std::vector<BranchSummary> branchSummaries() const;

  private:
    struct BranchState
    {
        uint64_t execs = 0;
        uint64_t taken = 0;
        uint8_t history = 0;        ///< last 4 outcomes, bit0 = newest
        uint32_t ctx[16][2] = {};   ///< [history][outcome] counts
    };

    uint64_t instrCount = 0;
    uint64_t condExecs = 0;
    uint64_t condTaken = 0;
    uint64_t callCount = 0;
    uint64_t classCounts[10] = {};
    std::unordered_map<uint64_t, BranchState> perBranch;
    std::unordered_set<uint64_t> callTargets;
    RecurrenceCollector recurrence;
};

/**
 * Conditional history entropy H(outcome | last-4 outcomes) of one
 * branch's context table, normalized to [0,1]. Exposed for tests.
 */
double conditionalEntropy(const uint32_t ctx[16][2]);

/**
 * Fit one workload input end to end: stream `instructions` through
 * the trace cache (replayed when cached, VM-executed otherwise) into
 * a fitter and return the profile. Bumps synth.profiles_fitted /
 * synth.branches_fitted.
 */
SynthProfile fitWorkloadProfile(const Workload &workload,
                                size_t input_idx, uint64_t instructions,
                                const std::string &profile_name);

} // namespace bpnsp::synth

#endif // BPNSP_SYNTH_FITTER_HPP
