/**
 * @file
 * bpnsp_synth: fit branch-behavior profiles from traces and generate
 * seeded micro-ISA program populations from them.
 *
 * Modes (--mode):
 *   fit        Stream a workload input's trace (through the trace
 *              cache when configured) and write a
 *              bpnsp-synth-profile-v1 JSON document.
 *   generate   Resolve a profile and print the workload name(s) and
 *              program digest(s) for --seed, or for the population
 *              --seed-base .. --seed-base + --count - 1. The printed
 *              names are exactly what bpnsp_campaign --workloads,
 *              bpnsp_served clients, and the benches accept.
 *   validate   Regenerate the program twice and assert bit-identity,
 *              then execute it, refit a profile from the synthesized
 *              trace, and check the fitted-vs-source taken-rate
 *              distribution distance against --max-taken-tvd.
 *
 * Quickstart:
 *   bpnsp_synth --mode=fit --workload=mcf_like --input=0 \
 *       --instructions=500000 --out=/tmp/mcf.json
 *   bpnsp_synth --mode=generate --profile=/tmp/mcf.json \
 *       --seed-base=1 --count=8
 *   bpnsp_synth --mode=validate --profile=/tmp/mcf.json --seed=1 \
 *       --instructions=500000
 *
 * Exit status: 0 on success, 1 on a validation failure.
 */

#include <cstdio>

#include "core/runner.hpp"
#include "faultsim/faultsim.hpp"
#include "obs/metrics.hpp"
#include "obs/report.hpp"
#include "synth/fitter.hpp"
#include "synth/generator.hpp"
#include "synth/workload.hpp"
#include "util/logging.hpp"
#include "util/options.hpp"
#include "workloads/suite.hpp"

using namespace bpnsp;

namespace {

int
runFit(const OptionParser &opts)
{
    const std::string name = opts.getString("workload");
    const Workload workload = findWorkload(name);
    const size_t input = static_cast<size_t>(opts.getInt("input"));
    if (input >= workload.inputs.size())
        fatal("--input ", input, " out of range for ", name, " (",
              workload.inputs.size(), " inputs)");
    std::string profileName = opts.getString("profile-name");
    if (profileName.empty())
        profileName = name + "-" + workload.inputs[input].label;

    const synth::SynthProfile profile = synth::fitWorkloadProfile(
        workload, input,
        static_cast<uint64_t>(opts.getInt("instructions")),
        profileName);

    const std::string out = opts.getString("out");
    if (out.empty()) {
        std::fputs(profile.render().c_str(), stdout);
    } else {
        if (Status st = profile.save(out); !st.ok())
            fatal("cannot write profile: ", st.str());
        inform("synth: profile '", profileName, "' (",
               profile.staticCondBranches, " static branches, digest ",
               profile.digest(), ") written to ", out);
    }
    return 0;
}

int
runGenerate(const OptionParser &opts)
{
    const std::string ref = opts.getString("profile");
    synth::SynthProfile profile;
    if (Status st = synth::resolveProfileRef(ref, &profile); !st.ok())
        fatal(st.str());

    std::vector<uint64_t> seeds;
    if (const int64_t count = opts.getInt("count"); count > 1) {
        const uint64_t base =
            static_cast<uint64_t>(opts.getInt("seed-base"));
        for (int64_t i = 0; i < count; ++i)
            seeds.push_back(base + static_cast<uint64_t>(i));
    } else {
        seeds.push_back(static_cast<uint64_t>(opts.getInt("seed")));
    }

    for (const uint64_t seed : seeds) {
        const std::string name =
            "synth:" + ref + ":" + std::to_string(seed);
        const Program program =
            synth::generateProgram(profile, seed, name);
        std::printf("%s digest=%s instrs=%llu cond_branches=%llu\n",
                    name.c_str(),
                    synth::programDigest(program).c_str(),
                    static_cast<unsigned long long>(program.size()),
                    static_cast<unsigned long long>(
                        program.staticCondBranches()));
        if (const std::string &listing = opts.getString("listing-out");
            !listing.empty() && seeds.size() == 1) {
            std::FILE *f = std::fopen(listing.c_str(), "w");
            if (f == nullptr)
                fatal("cannot open ", listing);
            const std::string text =
                synth::renderProgramListing(program);
            std::fwrite(text.data(), 1, text.size(), f);
            std::fclose(f);
        }
    }
    return 0;
}

int
runValidate(const OptionParser &opts)
{
    static obs::Counter &failures =
        obs::counter("synth.validate_failures");

    const std::string ref = opts.getString("profile");
    const uint64_t seed = static_cast<uint64_t>(opts.getInt("seed"));
    const std::string name =
        "synth:" + ref + ":" + std::to_string(seed);

    synth::SynthProfile profile;
    if (Status st = synth::resolveProfileRef(ref, &profile); !st.ok())
        fatal(st.str());

    // Bit-identity: two independent generations must agree byte for
    // byte (instructions and initial data image).
    const Program first = synth::generateProgram(profile, seed, name);
    const Program second = synth::generateProgram(profile, seed, name);
    const std::string digest = synth::programDigest(first);
    if (synth::renderProgramListing(first) !=
        synth::renderProgramListing(second)) {
        failures.inc();
        std::printf("FAIL %s: regeneration is not bit-identical "
                    "(%s vs %s)\n",
                    name.c_str(), digest.c_str(),
                    synth::programDigest(second).c_str());
        return 1;
    }

    // Fidelity: refit the synthesized trace and compare distributions.
    Workload workload;
    if (Status st = synth::makeSynthWorkload(name, &workload); !st.ok())
        fatal(st.str());
    synth::ProfileFitter fitter;
    const uint64_t instructions =
        static_cast<uint64_t>(opts.getInt("instructions"));
    runWorkloadTrace(workload, 0, {&fitter}, instructions);
    const synth::SynthProfile refit = fitter.profile(name);

    if (opts.getFlag("dump-branches")) {
        for (const auto &b : fitter.branchSummaries())
            std::printf("branch ip=%llu execs=%llu taken_rate=%.4f "
                        "entropy=%.4f\n",
                        static_cast<unsigned long long>(b.ip),
                        static_cast<unsigned long long>(b.execs),
                        b.execs > 0 ? static_cast<double>(b.taken) /
                                          static_cast<double>(b.execs)
                                    : 0.0,
                        b.entropy);
    }

    const double takenTvd =
        synth::distSpecDistance(profile.takenRate, refit.takenRate);
    const double entropyTvd = synth::distSpecDistance(
        profile.historyEntropy, refit.historyEntropy);
    const double maxTvd = opts.getDouble("max-taken-tvd");
    const bool ok = takenTvd <= maxTvd;
    std::printf("%s %s digest=%s taken_tvd=%.4f entropy_tvd=%.4f "
                "static_branches=%llu/%llu\n",
                ok ? "OK" : "FAIL", name.c_str(), digest.c_str(),
                takenTvd, entropyTvd,
                static_cast<unsigned long long>(
                    refit.staticCondBranches),
                static_cast<unsigned long long>(
                    profile.staticCondBranches));
    if (!ok)
        failures.inc();
    return ok ? 0 : 1;
}

} // namespace

int
main(int argc, char **argv)
{
    OptionParser opts(
        "Fit branch-behavior profiles and generate seeded synthetic "
        "workloads.");
    opts.addString("mode", "fit", "fit | generate | validate");
    opts.addString("workload", "mcf_like",
                   "source workload name (fit)");
    opts.addInt("input", 0, "source workload input index (fit)");
    opts.addInt("instructions", 500000,
                "instructions to trace (fit / validate)");
    opts.addString("profile-name", "",
                   "profile identifier (fit; default "
                   "<workload>-<input-label>)");
    opts.addString("out", "",
                   "profile output path (fit; stdout when empty)");
    opts.addString("profile", "",
                   "profile reference (generate / validate): a JSON "
                   "path, or a name under BPNSP_SYNTH_PROFILES");
    opts.addInt("seed", 1, "generation seed (generate / validate)");
    opts.addInt("seed-base", 1, "first seed of a population (generate)");
    opts.addInt("count", 1, "population size (generate)");
    opts.addString("listing-out", "",
                   "write the program listing here (generate, single "
                   "seed)");
    opts.addFlag("dump-branches",
                 "print per-branch rates/entropies of the synthesized "
                 "trace (validate)");
    opts.addDouble("max-taken-tvd", 0.35,
                   "validation tolerance on the taken-rate "
                   "distribution distance (validate)");
    opts.addString("trace-cache", "",
                   "trace cache directory (also BPNSP_TRACE_CACHE)");
    opts.parse(argc, argv);
    obs::configureFromOptions(opts);
    faultsim::configureFromOptions(opts);

    if (const std::string &dir = opts.getString("trace-cache");
        !dir.empty())
        setTraceCacheDir(dir);

    const std::string &mode = opts.getString("mode");
    if (mode == "fit")
        return runFit(opts);
    if (mode == "generate")
        return runGenerate(opts);
    if (mode == "validate")
        return runValidate(opts);
    fatal("unknown --mode '", mode, "' (want fit|generate|validate)");
}
