#include "synth/profile.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "util/fsutil.hpp"
#include "util/histogram.hpp"
#include "util/json.hpp"

namespace bpnsp::synth {

namespace {

/**
 * Exact canonical JSON number: integral values (the common case —
 * counts and bin edges) print without a fraction, everything else
 * prints with enough digits to round-trip the double bit-exactly.
 * Canonical formatting is what makes render -> parse -> render
 * byte-identical.
 */
std::string
canonicalNumber(double v)
{
    if (!(v == v) || v > 1e308 || v < -1e308)
        return "0";
    if (v == std::floor(v) && std::fabs(v) < 9.007199254740992e15) {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%lld",
                      static_cast<long long>(v));
        return buf;
    }
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    return buf;
}

/** Minimal canonical string escape (quote, backslash, control). */
std::string
escapeString(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (const char c : s) {
        if (c == '"' || c == '\\') {
            out += '\\';
            out += c;
        } else if (static_cast<unsigned char>(c) < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof(buf), "\\u%04x",
                          static_cast<unsigned>(c));
            out += buf;
        } else {
            out += c;
        }
    }
    return out;
}

void
renderDoubleArray(std::ostringstream &oss,
                  const std::vector<double> &values)
{
    oss << "[";
    for (size_t i = 0; i < values.size(); ++i)
        oss << (i == 0 ? "" : ",") << canonicalNumber(values[i]);
    oss << "]";
}

void
renderDist(std::ostringstream &oss, const char *key,
           const DistSpec &dist)
{
    oss << "      \"" << key << "\": {\"edges\": ";
    renderDoubleArray(oss, dist.edges);
    oss << ", \"fractions\": ";
    renderDoubleArray(oss, dist.fractions);
    oss << ", \"samples\": " << dist.samples << "}";
}

Status
parseDoubleArray(const JsonValue &v, const char *what,
                 std::vector<double> *out)
{
    if (!v.isArray())
        return Status::invalidArgument(std::string("profile: ") + what +
                                       " is not an array");
    out->clear();
    for (const JsonValue &item : v.items()) {
        if (!item.isNumber())
            return Status::invalidArgument(std::string("profile: ") +
                                           what + " holds a non-number");
        out->push_back(item.asDouble());
    }
    return Status();
}

Status
parseDist(const JsonValue &branch, const char *key, DistSpec *out)
{
    const JsonValue &v = branch.get(key);
    if (!v.isObject())
        return Status::invalidArgument(
            std::string("profile: missing branch distribution '") + key +
            "'");
    if (Status st = parseDoubleArray(v.get("edges"), key, &out->edges);
        !st.ok())
        return st;
    if (Status st =
            parseDoubleArray(v.get("fractions"), key, &out->fractions);
        !st.ok())
        return st;
    out->samples = v.get("samples").asUint();
    if (!out->valid())
        return Status::invalidArgument(
            std::string("profile: malformed distribution '") + key +
            "' (edges must increase, one fraction per bin)");
    return Status();
}

} // namespace

DistSpec
DistSpec::fromHistogram(const Histogram &hist)
{
    DistSpec spec;
    spec.samples = hist.total();
    spec.edges.reserve(hist.numBins() + 1);
    spec.fractions.reserve(hist.numBins());
    for (size_t i = 0; i < hist.numBins(); ++i) {
        spec.edges.push_back(hist.binLo(i));
        spec.fractions.push_back(hist.fraction(i));
    }
    spec.edges.push_back(hist.binHi(hist.numBins() - 1));
    return spec;
}

double
DistSpec::sample(Rng &rng) const
{
    if (edges.size() < 2)
        return 0.0;
    if (samples == 0)
        return (edges.front() + edges.back()) / 2.0;
    const double u = rng.uniform();
    double cumulative = 0.0;
    size_t bin = fractions.size() - 1;
    for (size_t i = 0; i < fractions.size(); ++i) {
        cumulative += fractions[i];
        if (u < cumulative) {
            bin = i;
            break;
        }
    }
    const double lo = edges[bin];
    const double hi = edges[bin + 1];
    return lo + (hi - lo) * rng.uniform();
}

std::vector<double>
DistSpec::stratified(size_t n, Rng &rng) const
{
    std::vector<double> out;
    out.reserve(n);
    if (n == 0)
        return out;
    if (edges.size() < 2 || samples == 0) {
        for (size_t i = 0; i < n; ++i)
            out.push_back(sample(rng));
        return out;
    }
    // Largest-remainder quotas: floor allocations first, then hand the
    // leftover slots to the bins with the biggest fractional parts
    // (random jitter breaks ties so no bin is structurally favored).
    std::vector<size_t> counts(fractions.size(), 0);
    std::vector<std::pair<double, size_t>> remainders;
    size_t allocated = 0;
    for (size_t i = 0; i < fractions.size(); ++i) {
        const double quota = fractions[i] * static_cast<double>(n);
        counts[i] = static_cast<size_t>(quota);
        allocated += counts[i];
        remainders.push_back(
            {quota - std::floor(quota) + rng.uniform() * 1e-9, i});
    }
    std::sort(remainders.begin(), remainders.end(),
              [](const auto &a, const auto &b) {
                  return a.first > b.first;
              });
    for (size_t r = 0; allocated < n; ++r, ++allocated)
        ++counts[remainders[r % remainders.size()].second];
    for (size_t i = 0; i < counts.size(); ++i)
        for (size_t c = 0; c < counts[i]; ++c)
            out.push_back((edges[i] + edges[i + 1]) / 2.0);
    // Fisher-Yates so the bins interleave across emission sites.
    for (size_t i = out.size() - 1; i > 0; --i)
        std::swap(out[i], out[rng.below(i + 1)]);
    return out;
}

double
DistSpec::mean() const
{
    if (edges.size() < 2 || samples == 0)
        return edges.size() < 2 ? 0.0
                                : (edges.front() + edges.back()) / 2.0;
    double sum = 0.0;
    for (size_t i = 0; i < fractions.size(); ++i)
        sum += fractions[i] * (edges[i] + edges[i + 1]) / 2.0;
    return sum;
}

double
DistSpec::massAbove(double value) const
{
    double mass = 0.0;
    for (size_t i = 0; i < fractions.size(); ++i)
        if (edges[i] >= value)
            mass += fractions[i];
    return mass;
}

bool
DistSpec::valid() const
{
    if (edges.size() < 2 || fractions.size() != edges.size() - 1)
        return false;
    for (size_t i = 0; i + 1 < edges.size(); ++i)
        if (!(edges[i] < edges[i + 1]))
            return false;
    for (const double f : fractions)
        if (!(f >= 0.0) || f > 1.0 + 1e-9)
            return false;
    return true;
}

double
distSpecDistance(const DistSpec &a, const DistSpec &b)
{
    if (a.fractions.size() != b.fractions.size())
        return 1.0;
    double tv = 0.0;
    for (size_t i = 0; i < a.fractions.size(); ++i)
        tv += std::fabs(a.fractions[i] - b.fractions[i]);
    return tv / 2.0;
}

std::string
SynthProfile::render() const
{
    std::ostringstream oss;
    oss << "{\n  \"schema\": \"" << kSchema << "\",\n"
        << "  \"name\": \"" << escapeString(name) << "\",\n"
        << "  \"source\": {\"workload\": \""
        << escapeString(sourceWorkload) << "\", \"input\": \""
        << escapeString(sourceInput)
        << "\", \"instructions\": " << sourceInstructions << "},\n"
        << "  \"global\": {\n"
        << "    \"instructions\": " << instructions << ",\n"
        << "    \"cond_execs\": " << condExecs << ",\n"
        << "    \"cond_taken\": " << condTaken << ",\n"
        << "    \"static_cond_branches\": " << staticCondBranches
        << ",\n"
        << "    \"static_call_targets\": " << staticCallTargets << ",\n"
        << "    \"calls\": " << calls << ",\n"
        << "    \"class_mix\": {";
    bool first = true;
    for (size_t i = 0; i < classMix.size(); ++i) {
        const auto cls = static_cast<InstrClass>(i);
        oss << (first ? "" : ", ") << "\"" << instrClassName(cls)
            << "\": " << canonicalNumber(classMix[i]);
        first = false;
    }
    oss << "}\n  },\n  \"branch\": {\n";
    renderDist(oss, "taken_rate", takenRate);
    oss << ",\n";
    renderDist(oss, "history_entropy", historyEntropy);
    oss << ",\n";
    renderDist(oss, "exec_log2", execLog2);
    oss << ",\n";
    renderDist(oss, "recurrence_log2", recurrenceLog2);
    oss << ",\n";
    renderDist(oss, "fig3_executions", fig3Executions);
    oss << "\n  }\n}\n";
    return oss.str();
}

std::string
SynthProfile::digest() const
{
    char buf[20];
    std::snprintf(buf, sizeof(buf), "%016llx",
                  static_cast<unsigned long long>(fnv1a64(render())));
    return buf;
}

Status
SynthProfile::fromJson(const std::string &text, SynthProfile *out)
{
    *out = SynthProfile();
    JsonValue doc;
    if (Status st = JsonValue::parse(text, &doc); !st.ok())
        return st;
    if (doc.get("schema").asString() != kSchema)
        return Status::invalidArgument(
            "profile: schema is not " + std::string(kSchema) + " (got '" +
            doc.get("schema").asString() + "')");
    out->name = doc.get("name").asString();
    if (out->name.empty())
        return Status::invalidArgument("profile: missing name");

    const JsonValue &source = doc.get("source");
    out->sourceWorkload = source.get("workload").asString();
    out->sourceInput = source.get("input").asString();
    out->sourceInstructions = source.get("instructions").asUint();

    const JsonValue &global = doc.get("global");
    if (!global.isObject())
        return Status::invalidArgument("profile: missing global object");
    out->instructions = global.get("instructions").asUint();
    out->condExecs = global.get("cond_execs").asUint();
    out->condTaken = global.get("cond_taken").asUint();
    out->staticCondBranches =
        global.get("static_cond_branches").asUint();
    out->staticCallTargets = global.get("static_call_targets").asUint();
    out->calls = global.get("calls").asUint();

    const JsonValue &mix = global.get("class_mix");
    if (!mix.isObject())
        return Status::invalidArgument("profile: missing class_mix");
    for (size_t i = 0; i < out->classMix.size(); ++i) {
        const auto cls = static_cast<InstrClass>(i);
        out->classMix[i] = mix.get(instrClassName(cls)).asDouble();
        if (out->classMix[i] < 0.0 || out->classMix[i] > 1.0)
            return Status::invalidArgument(
                std::string("profile: class_mix.") + instrClassName(cls) +
                " outside [0,1]");
    }

    const JsonValue &branch = doc.get("branch");
    if (!branch.isObject())
        return Status::invalidArgument("profile: missing branch object");
    if (Status st = parseDist(branch, "taken_rate", &out->takenRate);
        !st.ok())
        return st;
    if (Status st =
            parseDist(branch, "history_entropy", &out->historyEntropy);
        !st.ok())
        return st;
    if (Status st = parseDist(branch, "exec_log2", &out->execLog2);
        !st.ok())
        return st;
    if (Status st =
            parseDist(branch, "recurrence_log2", &out->recurrenceLog2);
        !st.ok())
        return st;
    if (Status st =
            parseDist(branch, "fig3_executions", &out->fig3Executions);
        !st.ok())
        return st;
    return Status();
}

Status
SynthProfile::load(const std::string &path, SynthProfile *out)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return Status::ioError("cannot open profile: " + path);
    std::ostringstream text;
    text << in.rdbuf();
    if (!in.good() && !in.eof())
        return Status::ioError("cannot read profile: " + path);
    return fromJson(text.str(), out);
}

Status
SynthProfile::save(const std::string &path) const
{
    const std::string doc = render();
    const std::string staging = path + ".staging";
    std::FILE *f = std::fopen(staging.c_str(), "w");
    if (f == nullptr)
        return Status::ioError("cannot open for writing: " + staging);
    const bool wrote =
        std::fwrite(doc.data(), 1, doc.size(), f) == doc.size();
    Status st = wrote ? syncStream(f, staging)
                      : Status::ioError("short write: " + staging);
    if (std::fclose(f) != 0)
        st.update(Status::ioError("close failed: " + staging));
    if (!st.ok()) {
        std::remove(staging.c_str());
        return st;
    }
    st = atomicPublishFile(staging, path);
    if (!st.ok())
        std::remove(staging.c_str());
    return st;
}

} // namespace bpnsp::synth
