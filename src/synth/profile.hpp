/**
 * @file
 * Versioned branch-behavior profiles: the `bpnsp-synth-profile-v1`
 * JSON document that the fitter extracts from any trace and the
 * generator samples to synthesize fresh micro-ISA programs.
 *
 * A profile captures the per-branch characterization axes of the
 * workload-predictability literature (arXiv:2512.15827) as *bin
 * fractions*, not raw branch lists: per-static-branch taken-rate,
 * history-entropy, execution-count, and median-recurrence-interval
 * distributions, plus the instruction-class mix and the static
 * call/branch footprint. That makes a profile a few kilobytes no
 * matter how large the source trace was, and makes sampling it a
 * constant-time draw.
 *
 * Document layout (all fractions in [0,1]; see DESIGN.md "Synthesis"):
 *
 *   {
 *     "schema": "bpnsp-synth-profile-v1",
 *     "name": "...",                       // profile identifier
 *     "source": { "workload", "input", "instructions" },
 *     "global": {
 *       "instructions", "cond_execs", "cond_taken",
 *       "static_cond_branches", "static_call_targets", "calls",
 *       "class_mix": { "alu": f, ..., "ret": f }
 *     },
 *     "branch": {
 *       "taken_rate":      { "edges": [...], "fractions": [...],
 *                            "samples": n },
 *       "history_entropy": { ... },        // H(outcome | last 4) in [0,1]
 *       "exec_log2":       { ... },        // log2(execs + 1)
 *       "recurrence_log2": { ... },        // log2(median interval + 1)
 *       "fig3_executions": { ... }         // paper Fig. 3 exec bins
 *     }
 *   }
 *
 * Rendering is canonical (fixed key order, exact number formatting),
 * so render -> parse -> render is byte-identical and a profile digest
 * is stable — which is what lets same-profile-same-seed generation be
 * bit-identical across processes and machines.
 */

#ifndef BPNSP_SYNTH_PROFILE_HPP
#define BPNSP_SYNTH_PROFILE_HPP

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "trace/record.hpp"
#include "util/rng.hpp"
#include "util/status.hpp"

namespace bpnsp {

class Histogram;

namespace synth {

/**
 * One fitted distribution: explicit bin edges plus the fraction of
 * observations per bin. The sampling side of a Histogram, detached
 * from its counts so it can round-trip through JSON.
 */
struct DistSpec
{
    std::vector<double> edges;       ///< N+1 strictly increasing edges
    std::vector<double> fractions;   ///< N fractions, summing to ~1
    uint64_t samples = 0;            ///< observations behind the fit

    /** Convert a populated Histogram into its sampling spec. */
    static DistSpec fromHistogram(const Histogram &hist);

    /**
     * Draw one value: pick a bin by its fraction, then uniform within
     * the bin. With no samples behind the fit, returns the range
     * midpoint (a degenerate profile still generates).
     */
    double sample(Rng &rng) const;

    /**
     * Draw `n` values by quota: each bin gets floor(fraction * n)
     * values at its midpoint, remainders go to the largest fractional
     * quotas (random tie-break), and the result is shuffled. For
     * small n this reproduces the histogram far more faithfully than
     * n independent draws — a 4-branch profile stays a 4-bin profile
     * instead of a binomial accident.
     */
    std::vector<double> stratified(size_t n, Rng &rng) const;

    /** Mean of the fitted distribution (bin midpoints x fractions). */
    double mean() const;

    /** Fraction mass at or above `value` (by bin lower edge). */
    double massAbove(double value) const;

    /** Structural validity: edges increasing, one fraction per bin. */
    bool valid() const;
};

/** Total variation distance between two same-shaped specs, in [0,1]. */
double distSpecDistance(const DistSpec &a, const DistSpec &b);

/** A fitted branch-behavior profile (see file comment for layout). */
struct SynthProfile
{
    static constexpr const char *kSchema = "bpnsp-synth-profile-v1";

    std::string name = "profile";        ///< used in program names
    std::string sourceWorkload;          ///< provenance only
    std::string sourceInput;
    uint64_t sourceInstructions = 0;

    uint64_t instructions = 0;           ///< instructions observed
    uint64_t condExecs = 0;              ///< conditional executions
    uint64_t condTaken = 0;              ///< taken outcomes
    uint64_t staticCondBranches = 0;     ///< static branch footprint
    uint64_t staticCallTargets = 0;      ///< distinct call targets
    uint64_t calls = 0;                  ///< dynamic calls

    /** Fraction of instructions per class, indexed by InstrClass. */
    std::array<double, 10> classMix{};

    DistSpec takenRate;        ///< per-branch taken rate in [0,1]
    DistSpec historyEntropy;   ///< per-branch conditional entropy [0,1]
    DistSpec execLog2;         ///< per-branch log2(execs + 1)
    DistSpec recurrenceLog2;   ///< per-branch log2(median interval + 1)
    DistSpec fig3Executions;   ///< analysis/distributions Fig. 3 bins

    /** Fraction of observed instructions in the given class. */
    double
    classFraction(InstrClass cls) const
    {
        return classMix[static_cast<size_t>(cls)];
    }

    /** Canonical JSON rendering (byte-stable across round trips). */
    std::string render() const;

    /** 16-hex-digit digest of the canonical rendering. */
    std::string digest() const;

    /** Parse a profile document; InvalidArgument names the defect. */
    static Status fromJson(const std::string &text, SynthProfile *out);

    /** Load + parse a profile file. */
    static Status load(const std::string &path, SynthProfile *out);

    /** Write the canonical rendering to `path` (atomic publish). */
    Status save(const std::string &path) const;
};

} // namespace synth
} // namespace bpnsp

#endif // BPNSP_SYNTH_PROFILE_HPP
