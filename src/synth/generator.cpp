#include "synth/generator.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <functional>
#include <sstream>
#include <vector>

#include "obs/metrics.hpp"
#include "util/rng.hpp"
#include "workloads/builder.hpp"
#include "workloads/dispatch.hpp"

namespace bpnsp::synth {

namespace {

using B = ProgramBuilder;

uint64_t
clampU64(uint64_t v, uint64_t lo, uint64_t hi)
{
    return std::min(std::max(v, lo), hi);
}

/** How one sampled static branch will be emitted. */
struct BranchPlan
{
    enum class Kind { Chance, Loop, DataSmall, DataLarge };
    Kind kind = Kind::DataLarge;
    unsigned pct = 50;     ///< taken percentage (Chance/Data)
    unsigned trips = 4;    ///< loop trip count (Loop)
};

/**
 * Map one (taken-rate, entropy) sample to an emitter. The thresholds
 * mirror what each emitter can actually realize: `chance` branches
 * carry full per-execution entropy, counted loops carry none, and
 * table-threshold branches sit in between depending on table size.
 */
BranchPlan
planBranch(double takenRate, double entropy)
{
    BranchPlan plan;
    // Aim at the center of the 0.1-wide histogram bin the sample came
    // from: every emitter realizes its rate to within a couple of
    // percent, and a mid-bin target keeps the refitted branch in the
    // bin the profile drew it from instead of straddling an edge.
    const unsigned bin = static_cast<unsigned>(
        std::min(std::floor(takenRate * 10.0), 9.0));
    plan.pct = bin * 10 + 5;
    if (bin == 9 && entropy < 0.3) {
        // Strongly-taken low-entropy branches are loop back edges: a
        // 20-trip counted loop's back edge is taken 19/20 = 0.95, the
        // bin center.
        plan.kind = BranchPlan::Kind::Loop;
        plan.trips = 20;
    } else if (entropy >= 0.55) {
        plan.kind = BranchPlan::Kind::Chance;
    } else if (entropy < 0.25) {
        plan.kind = BranchPlan::Kind::DataSmall;
    } else {
        plan.kind = BranchPlan::Kind::DataLarge;
    }
    return plan;
}

/**
 * Emit one planned branch. Low-entropy branches follow a
 * deterministic run pattern over the iteration counter (history
 * predictors learn the run boundary); high-entropy ones test fresh
 * PRNG-indexed data. In both cases the branch is taken when the
 * tested value is below the planned percentage, so its taken rate
 * itself lands in the profile bin the sample came from.
 */
void
emitPlannedBranch(ProgramBuilder &b, const BranchPlan &plan,
                  uint64_t largeBase)
{
    Assembler &a = b.text();
    switch (plan.kind) {
      case BranchPlan::Kind::Chance: {
        const Label taken = a.newLabel();
        b.chance(plan.pct, taken);
        a.xori(13, 13, 0x2d);
        a.bind(taken);
        break;
      }
      case BranchPlan::Kind::Loop: {
        auto loop = b.loopBegin(11, plan.trips);
        a.add(13, 13, 11);
        b.loopEnd(loop);
        break;
      }
      case BranchPlan::Kind::DataSmall: {
        // Taken on the first k of every 64 iterations: the rate is
        // exactly k/64 and the period-64 run is nearly deterministic
        // under a short outcome history.
        const Label taken = a.newLabel();
        a.andi(9, B::Iter, 63);
        a.li(10, static_cast<int64_t>((plan.pct * 64 + 50) / 100));
        a.blt(9, 10, taken);
        a.add(13, 13, 9);
        a.bind(taken);
        break;
      }
      case BranchPlan::Kind::DataLarge: {
        // The large table holds the exact 0..99 quantiles (stratified,
        // not sampled), so the fraction of entries below pct is within
        // 1/128 of pct/100; PRNG indexing makes each execution an
        // independent draw.
        b.prngNext();
        b.loadTableEntry(9, largeBase, 7, B::Prng);
        const Label taken = a.newLabel();
        a.li(10, static_cast<int64_t>(plan.pct));
        a.blt(9, 10, taken);
        a.add(13, 13, 9);
        a.bind(taken);
        break;
      }
    }
}

/** One slot of the instruction-class-mix filler. */
enum class FillerOp { Alu, Mul, Div, Load, Store };

/**
 * Pick filler slots matching the profile's class mix. Branch/control
 * classes are excluded (branches are planned separately); the
 * remaining mass is renormalized over {alu, mul, div, load, store}.
 */
std::vector<FillerOp>
planFiller(const SynthProfile &profile, Rng &rng, size_t slots)
{
    const FillerOp ops[5] = {FillerOp::Alu, FillerOp::Mul,
                             FillerOp::Div, FillerOp::Load,
                             FillerOp::Store};
    double weights[5] = {
        profile.classFraction(InstrClass::Alu),
        profile.classFraction(InstrClass::Mul),
        profile.classFraction(InstrClass::Div),
        profile.classFraction(InstrClass::Load),
        profile.classFraction(InstrClass::Store),
    };
    double total = 0.0;
    for (const double w : weights)
        total += w;
    if (total <= 0.0) {
        weights[0] = 1.0;   // degenerate profile: plain ALU filler
        total = 1.0;
    }
    std::vector<FillerOp> plan;
    plan.reserve(slots);
    for (size_t i = 0; i < slots; ++i) {
        double u = rng.uniform() * total;
        size_t pick = 0;
        for (size_t k = 0; k < 5; ++k) {
            u -= weights[k];
            if (u < 0.0) {
                pick = k;
                break;
            }
        }
        plan.push_back(ops[pick]);
    }
    return plan;
}

/**
 * Emit the filler slots, inside a short counted loop when `withLoop`
 * (small-footprint profiles skip the loop so its back edge does not
 * distort a tiny branch population). r14 holds the scratch-table base
 * for the kernel, r13 is the rotating data value, r12 the loop
 * counter.
 */
void
emitFiller(ProgramBuilder &b, const std::vector<FillerOp> &slots,
           uint64_t scratchBase, unsigned trips, bool withLoop)
{
    Assembler &a = b.text();
    a.li(14, static_cast<int64_t>(scratchBase));
    ProgramBuilder::LoopCtx loop{};
    if (withLoop)
        loop = b.loopBegin(12, trips);
    else
        a.li(12, static_cast<int64_t>(trips));
    a.add(13, 13, 12);   // restart the chain: iterations overlap
    for (const FillerOp op : slots) {
        switch (op) {
          case FillerOp::Alu:
            a.xori(13, 13, 0x35);
            break;
          case FillerOp::Mul:
            a.muli(13, 13, 3);
            break;
          case FillerOp::Div:
            a.div(13, 13, 12);
            break;
          case FillerOp::Load:
            a.andi(11, 13, 63 * 8);
            a.add(11, 11, 14);
            a.load(13, 11, 0);
            break;
          case FillerOp::Store:
            a.andi(11, 13, 63 * 8);
            a.add(11, 11, 14);
            a.store(13, 11, 0);
            break;
        }
    }
    if (withLoop)
        b.loopEnd(loop);
}

} // namespace

Program
generateProgram(const SynthProfile &profile, uint64_t seed,
                const std::string &program_name)
{
    static obs::Counter &generated =
        obs::counter("synth.programs_generated");

    // All structural decisions flow from this stream — a pure function
    // of the profile's canonical rendering and the seed, which is the
    // whole determinism contract.
    Rng structRng = Rng::stream(splitmix64(seed) ^
                                    fnv1a64(profile.render()),
                                "synth.structure");
    ProgramBuilder b(program_name, seed);
    Assembler &a = b.text();

    // --- derived shape -------------------------------------------------
    // Scale the scaffold with the profile's static footprint: a
    // 4-branch kernel benchmark gets one small kernel (the sampled
    // branches must dominate its static population, or the fitted
    // taken-rate distribution drowns in scaffold back-edges), a
    // many-thousand-branch LCF profile gets the full phase + library
    // structure.
    const uint64_t targetStatic =
        std::max<uint64_t>(profile.staticCondBranches, 4);
    const bool wantCalls =
        profile.calls > 0 || profile.staticCallTargets > 0;
    const unsigned numKernels =
        static_cast<unsigned>(clampU64(targetStatic / 12 + 1, 1, 4));
    const bool fillerLoop = targetStatic >= 12;
    const unsigned numFuncs =
        wantCalls
            ? static_cast<unsigned>(clampU64(
                  std::min(std::max<uint64_t>(
                               profile.staticCallTargets, 1),
                           targetStatic),
                  1, 400))
            : 0;
    // Kernels at even indices host the call/dispatch block.
    const unsigned callKernels = wantCalls ? (numKernels + 1) / 2 : 0;

    // Call-stream skew: the fewer hot branches the profile has, the
    // steeper the Zipf over library functions.
    const double heavyTail = profile.execLog2.massAbove(12.0);
    const double zipfExp =
        std::clamp(0.6 + (1.0 - heavyTail) * 0.9, 0.6, 1.5);

    // Call rate: gate the dispatch block so calls per instruction land
    // near the profile's. A kernel invocation retires very roughly 200
    // instructions, so period = callsPerInstr^-1 / 200. The gate's own
    // branch is almost-always-taken, so small-footprint profiles skip
    // it — one uncontrolled branch among four would swamp the fitted
    // distribution.
    unsigned log2CallPeriod = 0;
    if (wantCalls && targetStatic >= 32 && profile.calls > 0 &&
        profile.instructions > 0) {
        const double perInstr =
            static_cast<double>(profile.calls) /
            static_cast<double>(profile.instructions);
        const double period = 1.0 / std::max(perInstr * 200.0, 1e-6);
        log2CallPeriod = static_cast<unsigned>(std::clamp(
            std::lround(std::log2(std::max(period, 1.0))), 0l, 8l));
    }

    // Static-branch budget. Scaffold branches (phase dispatch, filler
    // back edges, dispatch trees, call gates) are structural and not
    // drawn from the profile; everything else is planned by sampling
    // the profile's joint (taken-rate, entropy) distributions, split
    // between the kernels (up to 48/96 branches apiece) and the
    // function library, which absorbs the rest of the budget.
    const uint64_t scaffold =
        numKernels + (fillerLoop ? numKernels : 0) +
        (numFuncs > 1
             ? static_cast<uint64_t>(numFuncs - 1) * callKernels
             : 0) +
        (log2CallPeriod > 0 ? callKernels : 0);
    const uint64_t planned =
        targetStatic > scaffold + 2 ? targetStatic - scaffold : 2;
    const uint64_t kernelTotal = std::min<uint64_t>(
        planned, static_cast<uint64_t>(numKernels) *
                     (wantCalls ? 48 : 96));
    const unsigned funcBranches =
        numFuncs > 0
            ? static_cast<unsigned>(clampU64(
                  (planned - kernelTotal + numFuncs - 1) / numFuncs, 0,
                  30))
            : 0;

    // Phase length from the recurrence scale: branches with long
    // median recurrence only exist when the program dwells in a phase
    // long enough for whole kernels to go cold between visits. The
    // floor of 64 iterations keeps each kernel's view of the
    // iteration counter unbiased: DataSmall branches key on
    // (Iter & 63), and a shorter segment would alias against that
    // period, feeding each kernel only a skewed slice of the pattern.
    const double recurMean = profile.recurrenceLog2.mean();
    const unsigned log2Segment = static_cast<unsigned>(
        std::clamp(std::lround(recurMean / 2.0) + 2, 6l, 10l));

    // --- pre-sample all branch plans ----------------------------------
    // Quota-sampled (not iid): for a 4-branch profile, three
    // independent draws routinely double up a bin and blow the fitted
    // distribution; stratified allocation reproduces the histogram to
    // within one branch.
    const uint64_t totalPlanned =
        kernelTotal + static_cast<uint64_t>(funcBranches) * numFuncs;
    const std::vector<double> takenSamples =
        profile.takenRate.stratified(totalPlanned, structRng);
    const std::vector<double> entropySamples =
        profile.historyEntropy.stratified(totalPlanned, structRng);
    size_t planIdx = 0;
    const auto samplePlan = [&] {
        const double t = takenSamples[planIdx];
        const double e = entropySamples[planIdx];
        ++planIdx;
        return planBranch(t, e);
    };
    std::vector<std::vector<BranchPlan>> kernelPlans(numKernels);
    for (uint64_t i = 0; i < kernelTotal; ++i)
        kernelPlans[i % numKernels].push_back(samplePlan());
    std::vector<std::vector<BranchPlan>> funcPlans(numFuncs);
    for (unsigned f = 0; f < numFuncs; ++f)
        for (unsigned i = 0; i < funcBranches; ++i)
            funcPlans[f].push_back(samplePlan());
    std::vector<std::vector<FillerOp>> kernelFiller(numKernels);
    for (unsigned k = 0; k < numKernels; ++k)
        kernelFiller[k] = planFiller(profile, structRng, 10);

    // --- data tables ---------------------------------------------------
    // The table backing the high-entropy data branches holds the exact
    // 0..99 quantiles (PRNG indexing randomizes the access order, so
    // sorted contents cost nothing and buy exact rates).
    const uint64_t largeBase = b.table(
        7, [](Rng &, uint64_t i) { return (i * 100) >> 7; });
    std::vector<uint64_t> scratchBases;
    for (unsigned k = 0; k < numKernels; ++k)
        scratchBases.push_back(
            b.table(6, [](Rng &r, uint64_t) { return r.next(); }));

    // --- function library + call sequence ------------------------------
    // The library is emitted here rather than via emitFuncLibrary so
    // every call-reached branch is drawn from the profile with the
    // same precision as the kernels (emitFuncLibrary's bias knob is a
    // skip-branch threshold over random data — mirrored rate, table
    // noise — which is exactly what a fidelity-validated program
    // cannot afford).
    std::vector<Label> funcs;
    uint64_t seqBase = 0;
    if (wantCalls) {
        for (unsigned f = 0; f < numFuncs; ++f) {
            funcs.push_back(a.newLabel());
            a.bind(funcs.back());
            a.addi(13, 13, static_cast<int64_t>(f));
            for (const BranchPlan &plan : funcPlans[f])
                emitPlannedBranch(b, plan, largeBase);
            a.ret();
        }
        seqBase = makeZipfCallSequence(b, 10, numFuncs, zipfExp,
                                       /*min_run=*/2, /*max_run=*/6);
    }

    // --- kernels -------------------------------------------------------
    std::vector<std::function<void(ProgramBuilder &)>> kernels;
    for (unsigned k = 0; k < numKernels; ++k) {
        const std::vector<BranchPlan> plans = kernelPlans[k];
        const std::vector<FillerOp> filler = kernelFiller[k];
        const uint64_t scratch = scratchBases[k];
        const bool callsHere = wantCalls && (k % 2 == 0);
        kernels.push_back([=, &funcs](ProgramBuilder &kb) {
            Assembler &ka = kb.text();
            // 20 trips puts the filler back edge at 19/20 taken — the
            // [0.9,1.0) bin, where real profiles keep their loop mass.
            emitFiller(kb, filler, scratch, 20, fillerLoop);
            for (const BranchPlan &plan : plans)
                emitPlannedBranch(kb, plan, largeBase);
            if (callsHere) {
                const Label skip = ka.newLabel();
                const Label done = ka.newLabel();
                if (log2CallPeriod > 0)
                    kb.periodicGate(B::Iter, log2CallPeriod, skip);
                kb.loadTableEntry(7, seqBase, 10, B::Iter);
                emitDispatchTree(ka, 7, funcs, done);
                ka.bind(done);
                ka.bind(skip);
            }
        });
    }

    emitPhaseProgram(b, kernels, log2Segment);
    (void)a;
    generated.inc();
    return b.finish();
}

std::string
renderProgramListing(const Program &program)
{
    std::ostringstream oss;
    oss << "entry " << program.entry << " base " << program.codeBase
        << "\n";
    for (size_t i = 0; i < program.code.size(); ++i) {
        const Instr &in = program.code[i];
        oss << i << ": " << opcodeName(in.op) << " "
            << static_cast<unsigned>(in.rd) << ","
            << static_cast<unsigned>(in.ra) << ","
            << static_cast<unsigned>(in.rb) << "," << in.imm << "\n";
    }
    for (const auto &[addr, value] : program.dataInit)
        oss << "data " << addr << "=" << value << "\n";
    return oss.str();
}

std::string
programDigest(const Program &program)
{
    char buf[20];
    std::snprintf(
        buf, sizeof(buf), "%016llx",
        static_cast<unsigned long long>(
            fnv1a64(renderProgramListing(program))));
    return buf;
}

} // namespace bpnsp::synth
