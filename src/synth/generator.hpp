/**
 * @file
 * Seeded program synthesis: sample a SynthProfile's distributions and
 * emit a fresh micro-ISA program through the assembler and the
 * workload-suite scaffolding (ProgramBuilder, dispatch trees, Zipf
 * call sequences, phase structure).
 *
 * Determinism contract: generation is a pure function of
 * (profile canonical rendering, seed). The same profile document and
 * seed produce a bit-identical program — same instructions, same
 * initial data image — across processes and machines. That is what
 * makes `synth:<profile>:<seed>` a legitimate workload name: every
 * subsystem that resolves it (campaigns, the serving daemon, benches)
 * reconstructs the exact same trace.
 *
 * Each sampled static branch is mapped to the emitter that reproduces
 * its (taken-rate, history-entropy) point:
 *   - high entropy        -> the builder's `chance` primitive (fresh
 *                            PRNG data decides; systematically hard)
 *   - strong bias, low H  -> a counted loop whose back edge matches
 *                            the taken rate (trivially predictable)
 *   - otherwise           -> a data-table threshold branch; table size
 *                            scales with entropy (small table = short
 *                            learnable pattern)
 * The static footprint tail comes from a generated function library
 * sized by the profile's call-target count, dispatched over a
 * Zipf-distributed call sequence whose exponent tracks the profile's
 * execution-count skew.
 */

#ifndef BPNSP_SYNTH_GENERATOR_HPP
#define BPNSP_SYNTH_GENERATOR_HPP

#include <cstdint>
#include <string>

#include "synth/profile.hpp"
#include "vm/program.hpp"

namespace bpnsp::synth {

/**
 * Generate a program from a profile and seed (see the determinism
 * contract above). Bumps synth.programs_generated.
 */
Program generateProgram(const SynthProfile &profile, uint64_t seed,
                        const std::string &program_name);

/**
 * Deterministic text listing of a program's instructions and initial
 * data image (excludes the display name). Two programs are
 * bit-identical exactly when their listings match.
 */
std::string renderProgramListing(const Program &program);

/** 16-hex-digit digest of the listing; the bit-identity witness. */
std::string programDigest(const Program &program);

} // namespace bpnsp::synth

#endif // BPNSP_SYNTH_GENERATOR_HPP
