#include "synth/fitter.hpp"

#include <algorithm>
#include <cmath>

#include "analysis/distributions.hpp"
#include "bp/sim.hpp"
#include "core/runner.hpp"
#include "obs/metrics.hpp"
#include "util/histogram.hpp"

namespace bpnsp::synth {

namespace {

/** Binary entropy of p, in bits (0 at p=0 and p=1). */
double
binaryEntropy(double p)
{
    if (p <= 0.0 || p >= 1.0)
        return 0.0;
    return -p * std::log2(p) - (1.0 - p) * std::log2(1.0 - p);
}

} // namespace

double
conditionalEntropy(const uint32_t ctx[16][2])
{
    uint64_t total = 0;
    for (size_t h = 0; h < 16; ++h)
        total += ctx[h][0] + ctx[h][1];
    if (total == 0)
        return 0.0;
    double entropy = 0.0;
    for (size_t h = 0; h < 16; ++h) {
        const uint64_t n = ctx[h][0] + ctx[h][1];
        if (n == 0)
            continue;
        const double pTaken =
            static_cast<double>(ctx[h][1]) / static_cast<double>(n);
        entropy += static_cast<double>(n) / static_cast<double>(total) *
                   binaryEntropy(pTaken);
    }
    return entropy;
}

ProfileFitter::ProfileFitter() = default;

void
ProfileFitter::onRecord(const TraceRecord &rec)
{
    ++instrCount;
    ++classCounts[static_cast<size_t>(rec.cls)];
    if (rec.cls == InstrClass::Call) {
        ++callCount;
        callTargets.insert(rec.target);
    }
    if (rec.isCondBranch()) {
        ++condExecs;
        condTaken += rec.taken ? 1 : 0;
        BranchState &b = perBranch[rec.ip];
        ++b.execs;
        b.taken += rec.taken ? 1 : 0;
        // The context table only counts outcomes with a full 4-deep
        // history behind them; the first four executions just warm the
        // shift register. For branches executing thousands of times
        // (the ones that matter) the bias is negligible, and it keeps
        // cold-start noise out of the entropy estimate.
        if (b.execs > 4)
            ++b.ctx[b.history][rec.taken ? 1 : 0];
        b.history = static_cast<uint8_t>(((b.history << 1) |
                                          (rec.taken ? 1u : 0u)) &
                                         0xfu);
    }
    recurrence.onRecord(rec);
}

void
ProfileFitter::onEnd()
{
    recurrence.onEnd();
}

std::vector<ProfileFitter::BranchSummary>
ProfileFitter::branchSummaries() const
{
    std::vector<BranchSummary> out;
    out.reserve(perBranch.size());
    for (const auto &[ip, b] : perBranch)
        out.push_back({ip, b.execs, b.taken, conditionalEntropy(b.ctx)});
    std::sort(out.begin(), out.end(),
              [](const BranchSummary &a, const BranchSummary &b) {
                  return a.ip < b.ip;
              });
    return out;
}

SynthProfile
ProfileFitter::profile(const std::string &name) const
{
    SynthProfile out;
    out.name = name;
    out.instructions = instrCount;
    out.condExecs = condExecs;
    out.condTaken = condTaken;
    out.staticCondBranches = perBranch.size();
    out.staticCallTargets = callTargets.size();
    out.calls = callCount;
    for (size_t i = 0; i < out.classMix.size(); ++i)
        out.classMix[i] =
            instrCount == 0
                ? 0.0
                : static_cast<double>(classCounts[i]) /
                      static_cast<double>(instrCount);

    Histogram takenHist = Histogram::linear(0.0, 1.0, 0.1);
    Histogram entropyHist = Histogram::linear(0.0, 1.0, 0.1);
    Histogram execHist = Histogram::linear(0.0, 26.0, 2.0);
    Histogram recurHist = Histogram::linear(0.0, 26.0, 2.0);
    std::unordered_map<uint64_t, BranchCounters> totals;
    totals.reserve(perBranch.size());
    for (const auto &[ip, b] : perBranch) {
        takenHist.add(static_cast<double>(b.taken) /
                      static_cast<double>(b.execs));
        entropyHist.add(conditionalEntropy(b.ctx));
        execHist.add(std::log2(static_cast<double>(b.execs) + 1.0));
        BranchCounters &c = totals[ip];
        c.execs = b.execs;
        c.taken = b.taken;
    }
    for (const auto &[ip, median] : recurrence.medians())
        recurHist.add(std::log2(static_cast<double>(median) + 1.0));

    out.takenRate = DistSpec::fromHistogram(takenHist);
    out.historyEntropy = DistSpec::fromHistogram(entropyHist);
    out.execLog2 = DistSpec::fromHistogram(execHist);
    out.recurrenceLog2 = DistSpec::fromHistogram(recurHist);
    out.fig3Executions = DistSpec::fromHistogram(
        computeBranchDistributions(totals).executions);
    return out;
}

SynthProfile
fitWorkloadProfile(const Workload &workload, size_t input_idx,
                   uint64_t instructions,
                   const std::string &profile_name)
{
    static obs::Counter &fitted = obs::counter("synth.profiles_fitted");
    static obs::Counter &branches =
        obs::counter("synth.branches_fitted");

    ProfileFitter fitter;
    runWorkloadTrace(workload, input_idx, {&fitter}, instructions);
    SynthProfile profile = fitter.profile(profile_name);
    profile.sourceWorkload = workload.name;
    profile.sourceInput = workload.inputs.at(input_idx).label;
    profile.sourceInstructions = fitter.instructions();
    fitted.inc();
    branches.add(profile.staticCondBranches);
    return profile;
}

} // namespace bpnsp::synth
